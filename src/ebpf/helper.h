// Helper-call boundary of the simulated eBPF environment.
//
// In real eBPF, helper functions (and kfuncs) are out-of-line calls from JITed
// bytecode: they clobber caller-saved registers, cannot be inlined into the
// program, and each invocation pays a call/return plus the helper body. The
// paper attributes large degradations (e.g. 46.6% for per-packet
// bpf_get_prandom_u32) to exactly this boundary.
//
// This header models that boundary: every helper is a `noinline` function
// with an internal compiler barrier, so the optimizer can neither inline the
// body into the "program" nor hoist it out of loops. Code that models an
// eBPF program MUST use these entry points; kernel-native code may call the
// underlying primitives directly.
#ifndef ENETSTL_EBPF_HELPER_H_
#define ENETSTL_EBPF_HELPER_H_

#include "ebpf/types.h"

#if defined(__GNUC__)
#define ENETSTL_NOINLINE __attribute__((noinline))
#else
#define ENETSTL_NOINLINE
#endif

namespace ebpf {

// Identifier of the CPU the simulated program is currently running on.
// The pipeline pins itself to CPU 0 by default (single-queue RSS setup).
u32 CurrentCpu();
void SetCurrentCpu(u32 cpu);

// Global counters for helper invocations; used by tests and by the Figure 1
// execution-time breakdown to attribute cost to the helper boundary. Plain
// (non-atomic) counters: the datapath is single-threaded and an atomic RMW
// per helper call would charge the simulation a cost real helpers don't pay.
struct HelperStats {
  u64 prandom_calls = 0;
  u64 ktime_calls = 0;
  u64 map_lookup_calls = 0;
  u64 map_update_calls = 0;
  u64 map_delete_calls = 0;
  u64 tail_call_calls = 0;
  u64 ringbuf_reserve_calls = 0;
  u64 ringbuf_submit_calls = 0;
  u64 ringbuf_discard_calls = 0;
  u64 ringbuf_output_calls = 0;

  void Reset() { *this = HelperStats{}; }
};

HelperStats& GlobalHelperStats();

// Fault-injection hook for helper-boundary operations. The ebpf layer cannot
// depend on core (where FaultInjector lives), so fallible helpers consult
// this raw hook; enetstl::FaultInjector::Global() installs itself here on
// first use. With no hook installed the probe is a single branch.
using HelperFaultHook = bool (*)(const char* point);
void SetHelperFaultHook(HelperFaultHook hook);

// True when an installed hook says the named fault point fails this call.
bool HelperFaultTriggered(const char* point);

namespace helpers {

// bpf_get_prandom_u32: the kernel's tausworthe generator, including the
// per-call state load/store that makes it expensive on a per-packet basis.
ENETSTL_NOINLINE u32 BpfGetPrandomU32();

// bpf_ktime_get_ns: monotonic nanosecond clock.
ENETSTL_NOINLINE u64 BpfKtimeGetNs();

// Seeds the prandom state (tests / reproducible benchmarks).
void SeedPrandom(u64 seed);

}  // namespace helpers

// A compiler barrier used inside helper bodies so the boundary cost is not
// optimized away when a helper result is unused by the caller.
inline void CompilerBarrier() { asm volatile("" ::: "memory"); }

}  // namespace ebpf

#endif  // ENETSTL_EBPF_HELPER_H_
