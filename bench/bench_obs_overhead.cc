// Observability overhead: chain throughput with telemetry off versus 1/N
// sampling rates {1/1024, 1/64, 1/1}, over the bench_chain workload.
//
// The acceptance bar for the telemetry plane is that 1/64 sampling stays
// within 5% of the telemetry-off build (the rate a production deployment
// would run), while 1/1 shows the full cost of per-event ring emission. A
// RingbufConsumer drains the event ring on a second thread throughout — the
// realistic deployment shape, and it keeps the ring from filling (drops are
// reported, not hidden). The final JSON report carries the obs block
// (schema_version 3): per-scope histogram summaries and sampled top-K flows.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "nf/chain.h"
#include "obs/exporter.h"
#include "obs/flow_sampler.h"
#include "obs/telemetry.h"

namespace {

using bench::u32;
using bench::u64;

// Same stage roster and trace recipe as bench_chain, so overhead numbers are
// directly comparable to the chain sweep.
std::vector<std::string> ChainStages(u32 length) {
  static const char* kCycle[] = {"cuckoo-filter", "vbf-membership"};
  std::vector<std::string> names;
  for (u32 i = 0; i < length; ++i) {
    names.push_back(kCycle[i % 2]);
  }
  return names;
}

pktgen::Trace MakeChainTrace(const nf::BenchEnv& env) {
  const std::vector<ebpf::FiveTuple> resident(env.flows.begin(),
                                              env.flows.begin() + 2048);
  return pktgen::MakeUniformTrace(resident, 16384, 79);
}

struct SamplingConfig {
  const char* label;
  bool on;
  u32 every;
};

// One timed pass over the trace (no internal repeats). The caller interleaves
// configs round-robin across repetitions so that ambient noise on the shared
// core lands on every column equally instead of biasing whichever config was
// measured last; best-of-reps per config then discards the perturbed passes.
double MeasureOnceMpps(nf::NetworkFunction& nf, const pktgen::Trace& trace,
                       u32 burst_size) {
  pktgen::Pipeline::Options opts;
  opts.warmup_packets = 20'000;
  opts.measure_packets = bench::EnvPackets(200'000);
  opts.burst_size = burst_size;
  const pktgen::Pipeline pipeline(opts);
  return pipeline.MeasureThroughputBurst(nf.BurstHandler(), trace).pps / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  bench::JsonReport report("obs_overhead", argc, argv);
  bench::PrintHeader(
      "Observability overhead: chain throughput vs sampling rate");
  if (!obs::kCompiledIn) {
    std::printf("-- observability compiled out (ENETSTL_OBS=OFF): all rates "
                "measure the bare datapath\n");
  }

  const nf::BenchEnv env = nf::MakeDefaultBenchEnv();
  const pktgen::Trace trace = MakeChainTrace(env);

  obs::Telemetry& telemetry = obs::Telemetry::Global();
  obs::FlowSampler sampler(8);
  ebpf::RingbufConsumer consumer(
      telemetry.ring(),
      [&sampler](const void* payload, ebpf::u32 len) {
        sampler.IngestRecord(payload, len);
      });

  const SamplingConfig kConfigs[] = {
      {"off", false, 0},
      {"1/1024", true, 1024},
      {"1/64", true, 64},
      {"1/1", true, 1},
  };
  constexpr int kNumConfigs = 4;

  std::printf("%-12s", "chain_depth");
  for (const SamplingConfig& config : kConfigs) {
    std::printf(" %9s(Mpps) %7s", config.label, "ovh(%)");
  }
  std::printf("\n");

  bool rate64_within_5pct = true;
  double worst_rate64_overhead = 0.0;
  const u32 kDepths[] = {1, 2, 4, 8};
  for (const u32 depth : kDepths) {
    const std::vector<std::string> stages = ChainStages(depth);
    // One chain per config (so sampling never sees another config's table
    // state), all constructed up front; measurement interleaves configs.
    std::unique_ptr<nf::NetworkFunction> chains[kNumConfigs];
    for (int c = 0; c < kNumConfigs; ++c) {
      chains[c] =
          nf::MakeBenchChain(stages, nf::Variant::kEnetstl, env, "chain");
      if (!chains[c]) {
        std::fprintf(stderr, "chain construction failed at depth %u\n", depth);
        return 1;
      }
    }
    double mpps[kNumConfigs] = {};
    // Noise on the shared core runs +-5% per pass and drifts slowly, so the
    // overhead estimate is PAIRED: each rep measures off and every sampling
    // rate back-to-back, each rate is expressed as a ratio of that same
    // rep's off pass (drift cancels within the pair), and the reported
    // overhead is the median ratio across reps. The Mpps columns stay
    // best-of-reps, the convention of every other bench.
    constexpr int kReps = 9;
    std::vector<double> ratios[kNumConfigs];
    for (int rep = 0; rep < kReps; ++rep) {
      double pass[kNumConfigs] = {};
      for (int c = 0; c < kNumConfigs; ++c) {
        if (kConfigs[c].on) {
          telemetry.Enable(kConfigs[c].every);
        } else {
          telemetry.Disable();
        }
        pass[c] = MeasureOnceMpps(*chains[c], trace, 32);
        mpps[c] = pass[c] > mpps[c] ? pass[c] : mpps[c];
        telemetry.Disable();
      }
      for (int c = 1; c < kNumConfigs; ++c) {
        if (pass[0] > 0) {
          ratios[c].push_back(pass[c] / pass[0]);
        }
      }
    }
    double overhead_pct[kNumConfigs] = {};
    for (int c = 1; c < kNumConfigs; ++c) {
      std::sort(ratios[c].begin(), ratios[c].end());
      const double median = ratios[c].empty()
                                ? 1.0
                                : ratios[c][ratios[c].size() / 2];
      overhead_pct[c] = (1.0 - median) * 100.0;
    }
    for (int c = 0; c < kNumConfigs; ++c) {
      report.Add(kConfigs[c].label, std::to_string(depth), mpps[c]);
    }
    std::printf("%-12u", depth);
    for (int c = 0; c < kNumConfigs; ++c) {
      std::printf(" %15.3f %7.1f", mpps[c], overhead_pct[c]);
      if (std::string(kConfigs[c].label) == "1/64") {
        worst_rate64_overhead = overhead_pct[c] > worst_rate64_overhead
                                    ? overhead_pct[c]
                                    : worst_rate64_overhead;
        if (overhead_pct[c] > 5.0) {
          rate64_within_5pct = false;
        }
      }
    }
    std::printf("\n");
  }

  consumer.Stop();
  const obs::ObsReport obs_report = obs::CollectObsReport(telemetry, &sampler);
  report.SetObsBlock(obs::ObsReportJson(obs_report));

  std::printf("-- ring events consumed: %llu, dropped: %llu; top-%zu flows "
              "sampled from %llu events\n",
              static_cast<unsigned long long>(consumer.consumed()),
              static_cast<unsigned long long>(obs_report.ring_dropped),
              obs_report.top_flows.size(),
              static_cast<unsigned long long>(sampler.events()));
  if (obs::kCompiledIn) {
    std::printf("-- 1/64 sampling overhead: worst %.1f%% across depths — %s "
                "the 5%% budget\n",
                worst_rate64_overhead,
                rate64_within_5pct ? "within" : "EXCEEDS");
  }
  return 0;
}
