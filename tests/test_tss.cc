// Tests for the tuple-space-search classifier: exact-match and wildcard
// rules, priority resolution across tuples, rule updates, and variant
// equivalence on the kernel/eNetSTL pair (shared CRC hashing).
#include "nf/tss.h"

#include <gtest/gtest.h>

#include <memory>

#include "pktgen/flowgen.h"
#include "pktgen/pipeline.h"

namespace nf {
namespace {

enum class Kind { kEbpf, kKernel, kEnetstl };

std::unique_ptr<TssBase> Make(Kind kind, const TssConfig& config) {
  switch (kind) {
    case Kind::kEbpf:
      return std::make_unique<TssEbpf>(config);
    case Kind::kKernel:
      return std::make_unique<TssKernel>(config);
    case Kind::kEnetstl:
      return std::make_unique<TssEnetstl>(config);
  }
  return nullptr;
}

ebpf::FiveTuple PacketOf(u32 src, u32 dst, ebpf::u16 sport, ebpf::u16 dport,
                         ebpf::u8 proto) {
  ebpf::FiveTuple t;
  t.src_ip = src;
  t.dst_ip = dst;
  t.src_port = sport;
  t.dst_port = dport;
  t.protocol = proto;
  return t;
}

ebpf::FiveTuple FullMask() {
  ebpf::FiveTuple m;
  std::memset(&m, 0xff, sizeof(m));
  return m;
}

ebpf::FiveTuple DstPortOnlyMask() {
  ebpf::FiveTuple m{};
  m.dst_port = 0xffff;
  return m;
}

ebpf::FiveTuple SrcIpOnlyMask() {
  ebpf::FiveTuple m{};
  m.src_ip = 0xffffffffu;
  return m;
}

class TssAllVariants : public ::testing::TestWithParam<Kind> {};

TEST_P(TssAllVariants, ExactMatchRule) {
  TssConfig config;
  auto tss = Make(GetParam(), config);
  const auto pkt = PacketOf(1, 2, 10, 80, 6);
  TssRule rule{pkt, FullMask(), /*priority=*/5, /*action=*/77};
  ASSERT_TRUE(tss->AddRule(rule));
  EXPECT_EQ(tss->Classify(pkt), std::optional<u32>(77));
  EXPECT_EQ(tss->Classify(PacketOf(1, 2, 10, 81, 6)), std::nullopt);
  EXPECT_EQ(tss->num_tuples(), 1u);
}

TEST_P(TssAllVariants, WildcardRuleMatchesBroadly) {
  TssConfig config;
  auto tss = Make(GetParam(), config);
  // Match every TCP packet to port 443, whatever the addresses.
  TssRule rule{PacketOf(0, 0, 0, 443, 0), DstPortOnlyMask(), 1, 10};
  ASSERT_TRUE(tss->AddRule(rule));
  EXPECT_EQ(tss->Classify(PacketOf(9, 9, 999, 443, 6)), std::optional<u32>(10));
  EXPECT_EQ(tss->Classify(PacketOf(3, 4, 5, 443, 17)), std::optional<u32>(10));
  EXPECT_EQ(tss->Classify(PacketOf(9, 9, 999, 80, 6)), std::nullopt);
}

TEST_P(TssAllVariants, HighestPriorityWinsAcrossTuples) {
  TssConfig config;
  auto tss = Make(GetParam(), config);
  const auto pkt = PacketOf(100, 200, 1234, 443, 6);
  // Three overlapping rules in three different tuples.
  ASSERT_TRUE(tss->AddRule({PacketOf(0, 0, 0, 443, 0), DstPortOnlyMask(),
                            /*priority=*/1, /*action=*/11}));
  ASSERT_TRUE(tss->AddRule({PacketOf(100, 0, 0, 0, 0), SrcIpOnlyMask(),
                            /*priority=*/9, /*action=*/22}));
  ASSERT_TRUE(tss->AddRule({pkt, FullMask(), /*priority=*/5, /*action=*/33}));
  EXPECT_EQ(tss->num_tuples(), 3u);
  EXPECT_EQ(tss->Classify(pkt), std::optional<u32>(22));  // priority 9 wins
  // A packet matching only the port rule gets action 11.
  EXPECT_EQ(tss->Classify(PacketOf(5, 5, 5, 443, 17)), std::optional<u32>(11));
}

TEST_P(TssAllVariants, RuleUpdateInPlace) {
  TssConfig config;
  auto tss = Make(GetParam(), config);
  const auto pkt = PacketOf(1, 1, 1, 1, 1);
  ASSERT_TRUE(tss->AddRule({pkt, FullMask(), 1, 100}));
  ASSERT_TRUE(tss->AddRule({pkt, FullMask(), 2, 200}));  // same masked key
  EXPECT_EQ(tss->Classify(pkt), std::optional<u32>(200));
  EXPECT_EQ(tss->num_tuples(), 1u);
}

TEST_P(TssAllVariants, ManyRulesAcrossManyTuples) {
  TssConfig config;
  config.buckets_per_tuple = 1024;
  auto tss = Make(GetParam(), config);
  // 16 tuples: mask on dst_port with distinct protocols-bit patterns.
  pktgen::Rng rng(64);
  u32 added = 0;
  for (u32 t = 0; t < 16; ++t) {
    // Distinct mask per t (the dst_ip mask bits encode t), so exactly 16
    // tuples are created.
    ebpf::FiveTuple mask{};
    mask.dst_port = 0xffff;
    mask.dst_ip = 0xffff0000u | t;
    mask.protocol = (t % 2) ? 0xff : 0;
    for (u32 r = 0; r < 40; ++r) {
      ebpf::FiveTuple key = PacketOf(rng.NextU32(), rng.NextU32(),
                                     static_cast<ebpf::u16>(rng.NextU32()),
                                     static_cast<ebpf::u16>(t * 100 + r), 6);
      // Mask the key so it is a canonical tuple member.
      if (tss->AddRule({key, mask, t * 100 + r, t * 1000 + r})) {
        ++added;
        // The original packet must match its own rule.
        const auto result = tss->Classify(key);
        ASSERT_TRUE(result.has_value());
      }
    }
  }
  EXPECT_GT(added, 600u);
  EXPECT_EQ(tss->num_tuples(), 16u);
}

TEST_P(TssAllVariants, PacketPathPassesMatches) {
  TssConfig config;
  auto tss = Make(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(4, 11);
  ASSERT_TRUE(tss->AddRule({flows[0], FullMask(), 1, 42}));
  auto match = pktgen::Packet::FromTuple(flows[0]);
  ebpf::XdpContext ctx{match.frame, match.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(tss->Process(ctx), ebpf::XdpAction::kPass);
  auto miss = pktgen::Packet::FromTuple(flows[1]);
  ebpf::XdpContext ctx2{miss.frame, miss.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(tss->Process(ctx2), ebpf::XdpAction::kDrop);
}

INSTANTIATE_TEST_SUITE_P(Variants, TssAllVariants,
                         ::testing::Values(Kind::kEbpf, Kind::kKernel,
                                           Kind::kEnetstl),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kEbpf:
                               return "eBPF";
                             case Kind::kKernel:
                               return "Kernel";
                             default:
                               return "eNetSTL";
                           }
                         });

TEST(TssEquivalence, KernelAndEnetstlAgree) {
  TssConfig config;
  TssKernel kern(config);
  TssEnetstl stl(config);
  pktgen::Rng rng(71);
  const ebpf::FiveTuple masks[3] = {FullMask(), DstPortOnlyMask(),
                                    SrcIpOnlyMask()};
  for (int i = 0; i < 300; ++i) {
    const TssRule rule{
        PacketOf(rng.NextU32() % 100, rng.NextU32(), 0,
                 static_cast<ebpf::u16>(rng.NextBounded(50)), 6),
        masks[rng.NextBounded(3)], static_cast<u32>(rng.NextBounded(100)),
        static_cast<u32>(i)};
    ASSERT_EQ(kern.AddRule(rule), stl.AddRule(rule));
  }
  for (int i = 0; i < 3000; ++i) {
    const auto pkt = PacketOf(rng.NextU32() % 100, rng.NextU32(), 0,
                              static_cast<ebpf::u16>(rng.NextBounded(50)), 6);
    ASSERT_EQ(kern.Classify(pkt), stl.Classify(pkt));
  }
}

}  // namespace
}  // namespace nf
