// Tests for the two-level timing wheel: due-time ordering, level-2 cascade
// correctness, horizon limits, capacity behaviour, and exact cross-variant
// equivalence (the wheel logic is deterministic and identical; only the
// storage substrate differs).
#include "nf/timewheel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ebpf/helper.h"
#include "pktgen/flowgen.h"

namespace nf {
namespace {

enum class Kind { kEbpf, kKernel, kEnetstl };

std::unique_ptr<TimeWheelBase> Make(Kind kind, const TimeWheelConfig& config) {
  switch (kind) {
    case Kind::kEbpf:
      return std::make_unique<TimeWheelEbpf>(config);
    case Kind::kKernel:
      return std::make_unique<TimeWheelKernel>(config);
    case Kind::kEnetstl:
      return std::make_unique<TimeWheelEnetstl>(config);
  }
  return nullptr;
}

class TimeWheelAllVariants : public ::testing::TestWithParam<Kind> {
 protected:
  void SetUp() override { ebpf::SetCurrentCpu(0); }
};

TEST_P(TimeWheelAllVariants, EnqueueDequeueSingleElement) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = 300;  // lands in slot 2 (256..384)
  e.flow = 42;
  ASSERT_TRUE(tw->Enqueue(e));
  EXPECT_EQ(tw->size(), 1u);
  TwElem out[8];
  EXPECT_EQ(tw->AdvanceOneSlot(out, 8), 0u);  // slot 1: nothing
  const u32 n = tw->AdvanceOneSlot(out, 8);   // slot 2: our element
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].flow, 42u);
  EXPECT_EQ(tw->size(), 0u);
}

TEST_P(TimeWheelAllVariants, ElementsInSameSlotPopTogether) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  for (u32 i = 0; i < 5; ++i) {
    TwElem e;
    e.expires = 130;  // slot 1
    e.flow = i;
    ASSERT_TRUE(tw->Enqueue(e));
  }
  TwElem out[8];
  const u32 n = tw->AdvanceOneSlot(out, 8);
  ASSERT_EQ(n, 5u);
  for (u32 i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].flow, i);  // FIFO within a slot
  }
}

TEST_P(TimeWheelAllVariants, PastExpiresGoToNextSlot) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  // Advance the clock a bit first.
  TwElem out[4];
  tw->AdvanceOneSlot(out, 4);
  tw->AdvanceOneSlot(out, 4);  // clk = 256
  TwElem e;
  e.expires = 50;  // already past
  e.flow = 7;
  ASSERT_TRUE(tw->Enqueue(e));
  // Must be delivered at the next slot advance, not lost.
  const u32 n = tw->AdvanceOneSlot(out, 4);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(out[0].flow, 7u);
}

TEST_P(TimeWheelAllVariants, BeyondHorizonRejected) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = tw->horizon_ns() + 1000;
  EXPECT_FALSE(tw->Enqueue(e));
  EXPECT_EQ(tw->size(), 0u);
}

TEST_P(TimeWheelAllVariants, CascadeDeliversLevel2Elements) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  // Element far enough to live in level 2 (delta >= kTvrSize slots).
  TwElem e;
  e.expires = static_cast<u64>(kTvrSize + 10) * 128;
  e.flow = 99;
  ASSERT_TRUE(tw->Enqueue(e));
  // Advance until it must appear.
  TwElem out[8];
  u32 delivered = 0;
  u64 delivered_at_slot = 0;
  for (u32 slot = 1; slot <= kTvrSize + 16; ++slot) {
    const u32 n = tw->AdvanceOneSlot(out, 8);
    if (n > 0) {
      delivered += n;
      delivered_at_slot = slot;
      EXPECT_EQ(out[0].flow, 99u);
    }
  }
  EXPECT_EQ(delivered, 1u);
  // Due at slot (kTvrSize + 10): the clock reaches its expiry then.
  EXPECT_EQ(delivered_at_slot, kTvrSize + 10u);
}

TEST_P(TimeWheelAllVariants, DeliveryTimeNeverBeforeExpiry) {
  TimeWheelConfig config;
  config.granularity_ns = 64;
  auto tw = Make(GetParam(), config);
  pktgen::Rng rng(99);
  std::vector<u64> expiries;
  for (int i = 0; i < 200; ++i) {
    TwElem e;
    e.expires = 64 + rng.NextBounded(tw->horizon_ns() - 128);
    e.flow = static_cast<u32>(i);
    if (tw->Enqueue(e)) {
      expiries.push_back(e.expires);
    }
  }
  TwElem out[64];
  u32 delivered = 0;
  for (u32 slot = 0; slot < kTvrSize * (kTvnSize + 1); ++slot) {
    const u32 n = tw->AdvanceOneSlot(out, 64);
    for (u32 i = 0; i < n; ++i) {
      // Element must not be delivered before its expiry slot has passed:
      // clock_ns is the upper edge of the current slot.
      EXPECT_LE(out[i].expires, tw->clock_ns() + config.granularity_ns);
      ++delivered;
    }
    if (delivered == expiries.size()) {
      break;
    }
  }
  EXPECT_EQ(delivered, expiries.size());
  EXPECT_EQ(tw->size(), 0u);
}

TEST_P(TimeWheelAllVariants, CapacityExhaustionFailsEnqueue) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  config.capacity = 8;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = 512;
  u32 accepted = 0;
  for (u32 i = 0; i < 16; ++i) {
    if (tw->Enqueue(e)) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 8u);
  TwElem out[16];
  u32 drained = 0;
  for (int slot = 0; slot < 8; ++slot) {
    drained += tw->AdvanceOneSlot(out, 16);
  }
  EXPECT_EQ(drained, 8u);
  // Capacity is recycled.
  e.expires = tw->clock_ns() + 300;
  EXPECT_TRUE(tw->Enqueue(e));
}

TEST_P(TimeWheelAllVariants, CancelBeforeDeliverySuppressesElement) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = 300;  // slot 2
  e.flow = 42;
  const u64 h = tw->EnqueueCancellable(e);
  ASSERT_NE(h, TimeWheelBase::kInvalidTimer);
  EXPECT_EQ(tw->cancelled_pending(), 0u);
  EXPECT_TRUE(tw->Cancel(h));
  EXPECT_EQ(tw->cancelled_pending(), 1u);
  TwElem out[8];
  u32 delivered = 0;
  for (int slot = 0; slot < 4; ++slot) {
    delivered += tw->AdvanceOneSlot(out, 8);
  }
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(tw->size(), 0u);
  // The tombstone was consumed by slot delivery; its slot is free again.
  EXPECT_EQ(tw->cancelled_pending(), 0u);
}

TEST_P(TimeWheelAllVariants, CancelledMidCascadeNeverDelivered) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  // Parks in a level-2 bucket (delta >= kTvrSize slots), so the element must
  // ride a cascade before it could ever be delivered.
  TwElem victim;
  victim.expires = static_cast<u64>(kTvrSize + 10) * 128;
  victim.flow = 1111;
  const u64 h = tw->EnqueueCancellable(victim);
  ASSERT_NE(h, TimeWheelBase::kInvalidTimer);
  // A live sibling in the same level-2 window proves the cascade still runs.
  TwElem sibling;
  sibling.expires = static_cast<u64>(kTvrSize + 12) * 128;
  sibling.flow = 2222;
  ASSERT_TRUE(tw->Enqueue(sibling));
  // Cancel while the element sits in level 2, before any cascade touched it.
  EXPECT_TRUE(tw->Cancel(h));
  EXPECT_EQ(tw->cancelled_pending(), 1u);
  TwElem out[8];
  u32 delivered_sibling = 0;
  for (u32 slot = 1; slot <= kTvrSize + 16; ++slot) {
    const u32 n = tw->AdvanceOneSlot(out, 8);
    for (u32 i = 0; i < n; ++i) {
      // The cancelled flow must never surface, not even once.
      ASSERT_NE(out[i].flow, 1111u);
      if (out[i].flow == 2222u) {
        ++delivered_sibling;
        // Delivery scrubs the wheel-private cookie.
        EXPECT_EQ(out[i].pad, 0u);
      }
    }
  }
  EXPECT_EQ(delivered_sibling, 1u);
  EXPECT_EQ(tw->size(), 0u);
  EXPECT_EQ(tw->cancelled_pending(), 0u);
}

TEST_P(TimeWheelAllVariants, DoubleCancelAndStaleHandlesReturnFalse) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = 200;
  e.flow = 9;
  const u64 h = tw->EnqueueCancellable(e);
  ASSERT_NE(h, TimeWheelBase::kInvalidTimer);
  EXPECT_TRUE(tw->Cancel(h));
  EXPECT_FALSE(tw->Cancel(h));  // double cancel
  // A delivered timer's handle goes stale too.
  TwElem e2;
  e2.expires = 200;
  e2.flow = 10;
  const u64 h2 = tw->EnqueueCancellable(e2);
  ASSERT_NE(h2, TimeWheelBase::kInvalidTimer);
  TwElem out[8];
  u32 got = 0;
  for (int slot = 0; slot < 4; ++slot) {
    got += tw->AdvanceOneSlot(out, 8);
  }
  EXPECT_EQ(got, 1u);  // only the armed one
  EXPECT_FALSE(tw->Cancel(h2));
  // Garbage handles are rejected outright.
  EXPECT_FALSE(tw->Cancel(0));
  EXPECT_FALSE(tw->Cancel(TimeWheelBase::kInvalidTimer - 1));
}

TEST_P(TimeWheelAllVariants, RecycledTimerSlotGetsFreshGeneration) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  auto tw = Make(GetParam(), config);
  TwElem e;
  e.expires = 200;
  e.flow = 1;
  const u64 h1 = tw->EnqueueCancellable(e);
  ASSERT_NE(h1, TimeWheelBase::kInvalidTimer);
  ASSERT_TRUE(tw->Cancel(h1));
  TwElem out[8];
  tw->AdvanceOneSlot(out, 8);  // sweeps the tombstone, freeing the slot
  ASSERT_EQ(tw->cancelled_pending(), 0u);
  // Re-arming may reuse the same slot index, but the generation differs, so
  // the old handle cannot cancel the new timer.
  TwElem f;
  f.expires = tw->clock_ns() + 400;
  f.flow = 2;
  const u64 h2 = tw->EnqueueCancellable(f);
  ASSERT_NE(h2, TimeWheelBase::kInvalidTimer);
  EXPECT_NE(h1, h2);
  EXPECT_FALSE(tw->Cancel(h1));
  EXPECT_TRUE(tw->Cancel(h2));
}

INSTANTIATE_TEST_SUITE_P(Variants, TimeWheelAllVariants,
                         ::testing::Values(Kind::kEbpf, Kind::kKernel,
                                           Kind::kEnetstl),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kEbpf:
                               return "eBPF";
                             case Kind::kKernel:
                               return "Kernel";
                             default:
                               return "eNetSTL";
                           }
                         });

// The wheel logic is identical across variants: a shared random workload
// must produce the exact same delivery sequence.
TEST(TimeWheelEquivalence, AllVariantsDeliverIdenticalSequences) {
  TimeWheelConfig config;
  config.granularity_ns = 128;
  TimeWheelEbpf a(config);
  TimeWheelKernel b(config);
  TimeWheelEnetstl c(config);
  ebpf::SetCurrentCpu(0);
  pktgen::Rng rng(31415);
  for (int step = 0; step < 5000; ++step) {
    if (rng.NextBounded(2) == 0) {
      TwElem e;
      e.expires = a.clock_ns() + 128 + rng.NextBounded(a.horizon_ns() - 256);
      e.flow = static_cast<u32>(step);
      const bool ra = a.Enqueue(e);
      const bool rb = b.Enqueue(e);
      const bool rc = c.Enqueue(e);
      ASSERT_EQ(ra, rb);
      ASSERT_EQ(ra, rc);
    } else {
      TwElem oa[32], ob[32], oc[32];
      const u32 na = a.AdvanceOneSlot(oa, 32);
      const u32 nb = b.AdvanceOneSlot(ob, 32);
      const u32 nc = c.AdvanceOneSlot(oc, 32);
      ASSERT_EQ(na, nb);
      ASSERT_EQ(na, nc);
      for (u32 i = 0; i < na; ++i) {
        ASSERT_EQ(oa[i].flow, ob[i].flow);
        ASSERT_EQ(oa[i].flow, oc[i].flow);
        ASSERT_EQ(oa[i].expires, ob[i].expires);
        ASSERT_EQ(oa[i].expires, oc[i].expires);
      }
    }
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
  }
}

TEST(TimeWheelPacketPath, QueueingTraceRuns) {
  TimeWheelConfig config;
  TimeWheelEnetstl tw(config);
  const auto flows = pktgen::MakeFlowPopulation(16, 7);
  const auto trace =
      pktgen::MakeQueueingTrace(flows, 2000, kTvrSize * kTvnSize / 2, 8);
  pktgen::ReplayOnce(tw.Handler(), trace);
  // The wheel processed enqueues and dequeues without stalling; size is
  // bounded by the number of enqueues.
  EXPECT_LE(tw.size(), 1000u);
}

}  // namespace
}  // namespace nf
