// Seeded, deterministic fault-injection subsystem (§4.4 robustness harness).
//
// The paper's safety argument (safe termination + memory safety) promises
// that an eBPF datapath survives runtime failures — bpf_obj_new exhaustion,
// map updates returning -ENOSPC, cuckoo kick chains running out — without
// crashing or corrupting state. This module makes those failures *routable*:
// code declares named fault points and asks ShouldFail() at the moment the
// real failure would surface; tests and benches arm schedules against the
// points and assert the graceful-degradation paths (victim stash, incremental
// migration, shard failover) actually hold.
//
// Three schedule modes per point, all deterministic under a fixed seed:
//  * one-shot    — fire exactly once, on the hit with the given index;
//  * every-Nth   — fire on every Nth hit (N = 1 fails every call);
//  * probability — fire with rate p from a per-point xorshift64 stream, so a
//                  run is reproducible from (point, rate, seed) alone.
//
// Concurrency: armed points are evaluated under a mutex (the sharded
// pipeline's workers probe their kill points concurrently); the common case
// — nothing armed anywhere — is a single relaxed atomic load, so datapath
// code can leave its probes compiled in unconditionally.
//
// Layering: core depends on ebpf, not vice versa, so the ebpf helper layer
// exposes a raw hook (ebpf::SetHelperFaultHook) and FaultInjector::Global()
// installs itself there on first use. Fault point names used in-tree:
//
//   mem.node_alloc             NodeProxy::NodeAlloc (bpf_obj_new exhaustion)
//   helper.map_update          ebpf map UpdateElem (-ENOSPC from the helper)
//   helper.prog_array_update   ProgArrayMap::UpdateElem (-ENOMEM; slot kept)
//   helper.ringbuf_reserve     ringbuf Reserve/Output (NULL + dropped_events)
//   cuckoo_switch.insert       forced kick-chain exhaustion -> victim stash
//   dary_cuckoo.insert         forced displacement-walk failure -> victim stash
//   cuckoo_filter.add          forced kick-chain exhaustion -> victim stash
//   shard.kill.<cpu>           sharded-pipeline worker death -> failover
//   reconfig.state_transfer    SwapNf state export alloc -> swap aborted
//   reconfig.swap_commit       SwapNf commit -> rollback, chain unchanged
//   conntrack.insert           forced arena exhaustion -> LRU pair eviction
#ifndef ENETSTL_CORE_FAULT_INJECTOR_H_
#define ENETSTL_CORE_FAULT_INJECTOR_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "ebpf/types.h"

namespace enetstl {

using ebpf::u64;

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Fires on the hit with 0-based index `after` (after = 0 fails the very
  // next hit), then disarms the point.
  void ArmOneShot(std::string_view point, u64 after);

  // Fires on every nth hit: hits n-1, 2n-1, ... (n == 1 fails every call).
  // n == 0 disarms.
  void ArmEveryNth(std::string_view point, u64 n);

  // Fires each hit independently with probability `rate` drawn from a
  // per-point xorshift64 stream seeded with `seed` — deterministic across
  // runs and independent of every other point's stream.
  void ArmProbability(std::string_view point, double rate, u64 seed);

  void Disarm(std::string_view point);

  // Disarms every point and zeroes all hit/fire counters.
  void Reset();

  // Datapath probe: records a hit on the point and returns true when the
  // armed schedule says this hit fails. Unarmed points (and the fully
  // disarmed injector) return false; only armed points track hits.
  bool ShouldFail(std::string_view point);

  // Introspection (tests assert exact schedules from these).
  u64 hits(std::string_view point) const;
  u64 fires(std::string_view point) const;
  bool armed() const {
    return armed_points_.load(std::memory_order_relaxed) != 0;
  }

  // Process-wide instance every in-tree fault point consults. First access
  // installs the ebpf helper-layer hook so map-update faults route here.
  static FaultInjector& Global();

 private:
  enum class Mode { kOneShot, kEveryNth, kProbability };

  struct Point {
    Mode mode = Mode::kOneShot;
    bool active = false;  // one-shots disarm in place, keeping counters
    u64 param = 0;        // one-shot: target hit index; every-nth: n
    u64 rng = 0;          // probability: xorshift64 state
    double rate = 0.0;
    u64 hits = 0;
    u64 fires = 0;
  };

  Point& Upsert(std::string_view point);
  void RecountArmed();

  mutable std::mutex mu_;
  std::atomic<ebpf::u32> armed_points_{0};
  std::map<std::string, Point, std::less<>> points_;
};

}  // namespace enetstl

#endif  // ENETSTL_CORE_FAULT_INJECTOR_H_
