#include "nf/cuckoo_switch.h"

#include <cstring>

#include "core/compare.h"
#include "core/compare_inl.h"
#include "core/hash.h"
#include "core/hash_inl.h"

namespace nf {

namespace {

// Multiplier mixing the signature into the alternate-bucket computation
// (partial-key cuckoo: alt(b, sig) = b ^ mix(sig), an involution).
constexpr u32 kAltMix = 0x5bd1e995u;

inline u32 AltBucket(u32 bucket, u32 sig, u32 mask) {
  return (bucket ^ (sig * kAltMix)) & mask;
}

// Signature derived from the bucket hash through the nonlinear finalizer
// (a second seeded CRC would be affinely correlated with the first).
inline u32 MakeSig(u32 h) {
  const u32 sig = enetstl::Fmix32(h);
  return sig == 0 ? 1u : sig;
}

struct Entry {
  u32 sig;
  u8 key[16];
  u64 value;
};

inline void WriteSlot(CuckooBucket& b, u32 slot, const Entry& e) {
  b.sigs[slot] = e.sig;
  std::memcpy(b.keys[slot], e.key, 16);
  b.values[slot] = e.value;
}

inline void ReadSlot(const CuckooBucket& b, u32 slot, Entry* e) {
  e->sig = b.sigs[slot];
  std::memcpy(e->key, b.keys[slot], 16);
  e->value = b.values[slot];
}

inline void ClearSlot(CuckooBucket& b, u32 slot) {
  b.sigs[slot] = 0;
  std::memset(b.keys[slot], 0, 16);
  b.values[slot] = 0;
}

// Scalar first-empty-slot search (insert path; shared by all variants —
// inserts are control-plane operations and are not what Figure 3(c)
// measures).
inline ebpf::s32 FindEmptySlot(const CuckooBucket& b) {
  for (u32 s = 0; s < kCuckooSlotsPerBucket; ++s) {
    if (b.sigs[s] == 0) {
      return static_cast<ebpf::s32>(s);
    }
  }
  return -1;
}

// BFS cuckoo insert: finds a displacement path to an empty slot and applies
// it back-to-front, so a failed insert leaves the table untouched (no key is
// ever lost). Shared across variants, parameterized only by the hash.
template <typename HashFn>
bool GenericInsert(CuckooBucket* buckets, u32 mask, u32 seed, HashFn hash,
                   const ebpf::FiveTuple& key, u64 value, u32* size) {
  const u32 h = hash(&key, sizeof(key), seed);
  const u32 sig = MakeSig(h);
  const u32 b1 = h & mask;
  const u32 b2 = AltBucket(b1, sig, mask);

  // Update in place if present.
  for (u32 b : {b1, b2}) {
    for (u32 s = 0; s < kCuckooSlotsPerBucket; ++s) {
      if (buckets[b].sigs[s] == sig &&
          std::memcmp(buckets[b].keys[s], &key, 16) == 0) {
        buckets[b].values[s] = value;
        return true;
      }
    }
  }

  Entry entry;
  entry.sig = sig;
  std::memcpy(entry.key, &key, 16);
  entry.value = value;

  for (u32 b : {b1, b2}) {
    const ebpf::s32 empty = FindEmptySlot(buckets[b]);
    if (empty >= 0) {
      WriteSlot(buckets[b], static_cast<u32>(empty), entry);
      ++*size;
      return true;
    }
  }

  // BFS over displacement paths. Each node remembers the bucket it examines
  // and how it was reached (parent node + victim slot).
  struct PathNode {
    u32 bucket;
    ebpf::s32 parent;
    u32 victim_slot;
  };
  constexpr std::size_t kMaxNodes = 2048;
  std::vector<PathNode> nodes;
  nodes.reserve(kMaxNodes);
  nodes.push_back({b1, -1, 0});
  nodes.push_back({b2, -1, 0});

  for (std::size_t i = 0; i < nodes.size() && nodes.size() < kMaxNodes; ++i) {
    const u32 bucket = nodes[i].bucket;
    for (u32 s = 0; s < kCuckooSlotsPerBucket; ++s) {
      const u32 victim_sig = buckets[bucket].sigs[s];
      const u32 ab = AltBucket(bucket, victim_sig, mask);
      const ebpf::s32 empty = FindEmptySlot(buckets[ab]);
      if (empty >= 0) {
        // Apply the path from the back: move the victim chain forward.
        Entry moved;
        ReadSlot(buckets[bucket], s, &moved);
        WriteSlot(buckets[ab], static_cast<u32>(empty), moved);
        u32 hole_bucket = bucket;
        u32 hole_slot = s;
        ebpf::s32 cur = static_cast<ebpf::s32>(i);
        while (nodes[cur].parent >= 0) {
          const PathNode& parent_node = nodes[nodes[cur].parent];
          Entry shifted;
          ReadSlot(buckets[parent_node.bucket], nodes[cur].victim_slot,
                   &shifted);
          WriteSlot(buckets[hole_bucket], hole_slot, shifted);
          hole_bucket = parent_node.bucket;
          hole_slot = nodes[cur].victim_slot;
          cur = nodes[cur].parent;
        }
        WriteSlot(buckets[hole_bucket], hole_slot, entry);
        ++*size;
        return true;
      }
      if (nodes.size() < kMaxNodes) {
        nodes.push_back({ab, static_cast<ebpf::s32>(i), s});
      }
    }
  }
  return false;
}

template <typename HashFn, typename EraseFind>
bool GenericErase(CuckooBucket* buckets, u32 mask, u32 seed, HashFn hash,
                  EraseFind find_slot, const ebpf::FiveTuple& key, u32* size) {
  const u32 h = hash(&key, sizeof(key), seed);
  const u32 sig = MakeSig(h);
  const u32 b1 = h & mask;
  const u32 b2 = AltBucket(b1, sig, mask);
  for (u32 b : {b1, b2}) {
    const ebpf::s32 slot = find_slot(buckets[b], key, sig);
    if (slot >= 0) {
      ClearSlot(buckets[b], static_cast<u32>(slot));
      --*size;
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// CuckooSwitchBase
// ---------------------------------------------------------------------------

void CuckooSwitchBase::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                                    ebpf::XdpAction* verdicts) {
  for (u32 start = 0; start < count; start += kMaxNfBurst) {
    const u32 chunk = (count - start < kMaxNfBurst) ? count - start
                                                    : kMaxNfBurst;
    ebpf::FiveTuple keys[kMaxNfBurst];
    std::optional<u64> results[kMaxNfBurst];
    u32 idx[kMaxNfBurst];
    u32 parsed = 0;
    for (u32 i = 0; i < chunk; ++i) {
      if (ebpf::ParseFiveTuple(ctxs[start + i], &keys[parsed])) {
        idx[parsed++] = start + i;
      } else {
        verdicts[start + i] = ebpf::XdpAction::kAborted;
      }
    }
    LookupBatch(keys, parsed, results);
    for (u32 i = 0; i < parsed; ++i) {
      verdicts[idx[i]] = results[i].has_value() ? ebpf::XdpAction::kTx
                                                : ebpf::XdpAction::kDrop;
    }
  }
}

// ---------------------------------------------------------------------------
// CuckooSwitchEbpf
// ---------------------------------------------------------------------------

CuckooSwitchEbpf::CuckooSwitchEbpf(const CuckooSwitchConfig& config)
    : CuckooSwitchBase(config),
      table_map_(/*max_entries=*/1,
                 /*value_size=*/config.num_buckets * sizeof(CuckooBucket)) {}

namespace {

// Scalar in-bucket search, eBPF style: slot-by-slot signature check followed
// by a two-word full-key comparison (the widest compare the eBPF ISA has).
inline ebpf::s32 EbpfFindSlot(const CuckooBucket& b, const ebpf::FiveTuple& key,
                              u32 sig) {
  u64 k0, k1;
  std::memcpy(&k0, &key, 8);
  std::memcpy(&k1, reinterpret_cast<const u8*>(&key) + 8, 8);
  for (u32 s = 0; s < kCuckooSlotsPerBucket; ++s) {
    if (b.sigs[s] != sig) {
      continue;
    }
    u64 s0, s1;
    std::memcpy(&s0, b.keys[s], 8);
    std::memcpy(&s1, b.keys[s] + 8, 8);
    if (s0 == k0 && s1 == k1) {
      return static_cast<ebpf::s32>(s);
    }
  }
  return -1;
}

inline u32 EbpfHash(const void* key, std::size_t len, u32 seed) {
  return enetstl::XxHash32Bpf(key, len, seed);
}

}  // namespace

bool CuckooSwitchEbpf::Insert(const ebpf::FiveTuple& key, u64 value) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  return GenericInsert(buckets, bucket_mask_, config_.seed, EbpfHash, key,
                       value, &size_);
}

std::optional<u64> CuckooSwitchEbpf::Lookup(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return std::nullopt;
  }
  const u32 h = EbpfHash(&key, sizeof(key), config_.seed);
  const u32 sig = MakeSig(h);
  const u32 b1 = h & bucket_mask_;
  ebpf::s32 slot = EbpfFindSlot(buckets[b1], key, sig);
  if (slot >= 0) {
    return buckets[b1].values[slot];
  }
  const u32 b2 = AltBucket(b1, sig, bucket_mask_);
  slot = EbpfFindSlot(buckets[b2], key, sig);
  if (slot >= 0) {
    return buckets[b2].values[slot];
  }
  return std::nullopt;
}

bool CuckooSwitchEbpf::Erase(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  return GenericErase(buckets, bucket_mask_, config_.seed, EbpfHash,
                      EbpfFindSlot, key, &size_);
}

// ---------------------------------------------------------------------------
// CuckooSwitchKernel
// ---------------------------------------------------------------------------

CuckooSwitchKernel::CuckooSwitchKernel(const CuckooSwitchConfig& config)
    : CuckooSwitchBase(config), buckets_(config.num_buckets) {
  std::memset(buckets_.data(), 0, buckets_.size() * sizeof(CuckooBucket));
}

namespace {

inline u32 KernelHash(const void* key, std::size_t len, u32 seed) {
  return enetstl::internal::HwHashCrcImpl(key, len, seed);
}

// Signature-first probing (the CuckooSwitch design): one SIMD compare over
// the 32-byte signature lane finds the candidate slot, and only that slot's
// full key is touched — one cache line per probed bucket on the common path.
// A signature collision with a key mismatch (rare: ~2^-32 per slot) falls
// back to a scalar scan of the remaining slots.
template <typename FindSigFn>
inline ebpf::s32 SigFirstFindSlot(const CuckooBucket& b,
                                  const ebpf::FiveTuple& key, u32 sig,
                                  FindSigFn find_sig) {
  const ebpf::s32 slot = find_sig(b.sigs, kCuckooSlotsPerBucket, sig);
  if (slot < 0) {
    return -1;
  }
  if (std::memcmp(b.keys[slot], &key, 16) == 0) {
    return slot;
  }
  for (u32 s = static_cast<u32>(slot) + 1; s < kCuckooSlotsPerBucket; ++s) {
    if (b.sigs[s] == sig && std::memcmp(b.keys[s], &key, 16) == 0) {
      return static_cast<ebpf::s32>(s);
    }
  }
  return -1;
}

inline ebpf::s32 KernelFindSlot(const CuckooBucket& b,
                                const ebpf::FiveTuple& key, u32 sig) {
  return SigFirstFindSlot(b, key, sig, [](const u32* sigs, u32 n, u32 target) {
    return enetstl::internal::FindU32Impl(sigs, n, target);
  });
}

}  // namespace

bool CuckooSwitchKernel::Insert(const ebpf::FiveTuple& key, u64 value) {
  return GenericInsert(buckets_.data(), bucket_mask_, config_.seed, KernelHash,
                       key, value, &size_);
}

std::optional<u64> CuckooSwitchKernel::Lookup(const ebpf::FiveTuple& key) {
  const u32 h = KernelHash(&key, sizeof(key), config_.seed);
  const u32 sig = MakeSig(h);
  const u32 b1 = h & bucket_mask_;
  ebpf::s32 slot = KernelFindSlot(buckets_[b1], key, sig);
  if (slot >= 0) {
    return buckets_[b1].values[slot];
  }
  const u32 b2 = AltBucket(b1, sig, bucket_mask_);
  slot = KernelFindSlot(buckets_[b2], key, sig);
  if (slot >= 0) {
    return buckets_[b2].values[slot];
  }
  return std::nullopt;
}

bool CuckooSwitchKernel::Erase(const ebpf::FiveTuple& key) {
  return GenericErase(buckets_.data(), bucket_mask_, config_.seed, KernelHash,
                      KernelFindSlot, key, &size_);
}

void CuckooSwitchKernel::LookupBatch(const ebpf::FiveTuple* keys, u32 n,
                                     std::optional<u64>* out) {
  CuckooBucket* buckets = buckets_.data();
  for (u32 start = 0; start < n; start += kMaxNfBurst) {
    const u32 chunk = (n - start < kMaxNfBurst) ? n - start : kMaxNfBurst;
    u32 sig[kMaxNfBurst];
    u32 b1[kMaxNfBurst];
    // Stage 1: hash every key of the burst and prefetch its primary bucket,
    // so the probe stage finds the cache lines already in flight.
    for (u32 i = 0; i < chunk; ++i) {
      const u32 h = KernelHash(&keys[start + i], sizeof(ebpf::FiveTuple),
                               config_.seed);
      sig[i] = MakeSig(h);
      b1[i] = h & bucket_mask_;
      enetstl::internal::PrefetchRead(&buckets[b1[i]]);
    }
    // Stage 2: probe primary, then alternate on signature miss.
    for (u32 i = 0; i < chunk; ++i) {
      const ebpf::FiveTuple& key = keys[start + i];
      ebpf::s32 slot = KernelFindSlot(buckets[b1[i]], key, sig[i]);
      if (slot >= 0) {
        out[start + i] = buckets[b1[i]].values[slot];
        continue;
      }
      const u32 b2 = AltBucket(b1[i], sig[i], bucket_mask_);
      slot = KernelFindSlot(buckets[b2], key, sig[i]);
      out[start + i] = slot >= 0
                           ? std::optional<u64>(buckets[b2].values[slot])
                           : std::nullopt;
    }
  }
}

// ---------------------------------------------------------------------------
// CuckooSwitchEnetstl
// ---------------------------------------------------------------------------

CuckooSwitchEnetstl::CuckooSwitchEnetstl(const CuckooSwitchConfig& config)
    : CuckooSwitchBase(config),
      table_map_(/*max_entries=*/1,
                 /*value_size=*/config.num_buckets * sizeof(CuckooBucket)) {}

namespace {

inline u32 EnetstlHash(const void* key, std::size_t len, u32 seed) {
  return enetstl::HwHashCrc(key, len, seed);  // kfunc call
}

// find_simd kfunc over the bucket's signature lane, then a single full-key
// confirm — the signature-first probe, with the SIMD compare as a kfunc.
inline ebpf::s32 EnetstlFindSlot(const CuckooBucket& b,
                                 const ebpf::FiveTuple& key, u32 sig) {
  return SigFirstFindSlot(b, key, sig, [](const u32* sigs, u32 n, u32 target) {
    return enetstl::FindU32(sigs, n, target);  // kfunc
  });
}

}  // namespace

bool CuckooSwitchEnetstl::Insert(const ebpf::FiveTuple& key, u64 value) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  return GenericInsert(buckets, bucket_mask_, config_.seed, EnetstlHash, key,
                       value, &size_);
}

std::optional<u64> CuckooSwitchEnetstl::Lookup(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return std::nullopt;
  }
  const u32 h = EnetstlHash(&key, sizeof(key), config_.seed);
  const u32 sig = MakeSig(h);
  const u32 b1 = h & bucket_mask_;
  ebpf::s32 slot = EnetstlFindSlot(buckets[b1], key, sig);
  if (slot >= 0) {
    return buckets[b1].values[slot];
  }
  const u32 b2 = AltBucket(b1, sig, bucket_mask_);
  slot = EnetstlFindSlot(buckets[b2], key, sig);
  if (slot >= 0) {
    return buckets[b2].values[slot];
  }
  return std::nullopt;
}

bool CuckooSwitchEnetstl::Erase(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  return GenericErase(buckets, bucket_mask_, config_.seed, EnetstlHash,
                      EnetstlFindSlot, key, &size_);
}

void CuckooSwitchEnetstl::LookupBatch(const ebpf::FiveTuple* keys, u32 n,
                                      std::optional<u64>* out) {
  auto* buckets = static_cast<CuckooBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    for (u32 i = 0; i < n; ++i) {
      out[i] = std::nullopt;
    }
    return;
  }
  for (u32 start = 0; start < n; start += kMaxNfBurst) {
    const u32 chunk = (n - start < kMaxNfBurst) ? n - start : kMaxNfBurst;
    u32 h[kMaxNfBurst];
    // Stage 1: one kfunc call hashes the whole burst and prefetches every
    // primary bucket — the per-packet call boundary is amortized over the
    // burst, which a per-packet hw_hash_crc cannot do.
    enetstl::HashPrefetchBatch(keys + start, sizeof(ebpf::FiveTuple),
                               sizeof(ebpf::FiveTuple), chunk, config_.seed,
                               buckets, static_cast<u32>(sizeof(CuckooBucket)),
                               bucket_mask_, h);
    // Stage 2: signature-first probes via the find_simd kfunc.
    for (u32 i = 0; i < chunk; ++i) {
      const ebpf::FiveTuple& key = keys[start + i];
      const u32 sig = MakeSig(h[i]);
      const u32 b1 = h[i] & bucket_mask_;
      ebpf::s32 slot = EnetstlFindSlot(buckets[b1], key, sig);
      if (slot >= 0) {
        out[start + i] = buckets[b1].values[slot];
        continue;
      }
      const u32 b2 = AltBucket(b1, sig, bucket_mask_);
      slot = EnetstlFindSlot(buckets[b2], key, sig);
      out[start + i] = slot >= 0 ? std::optional<u64>(buckets[b2].values[slot])
                                 : std::nullopt;
    }
  }
}

}  // namespace nf
