// Figure 3(e): Count-min sketch throughput vs number of hash functions.
// Paper: eNetSTL beats eBPF by 47.9% on average, up to 70.9% at 8 hash
// functions (SIMD pays off more as d grows); eNetSTL ~= kernel (1.64% gap).
#include "bench/bench_util.h"
#include "nf/cms.h"

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  bench::PrintHeader("Figure 3(e): Count-min sketch vs #hash functions");
  const auto flows = pktgen::MakeFlowPopulation(4096, 7);
  const auto trace = pktgen::MakeZipfTrace(flows, 16384, 1.0, 8);

  bench::PrintSweepHeader("hash_fns");
  bench::SweepAccumulator acc;
  for (bench::u32 rows : {1u, 2u, 4u, 6u, 8u}) {
    nf::CmsConfig config;
    config.rows = rows;
    config.cols = 4096;

    nf::CmsEbpf ebpf_cms(config);
    nf::CmsKernel kernel_cms(config);
    nf::CmsEnetstl enetstl_cms(config);

    const double e = bench::MeasureMpps(ebpf_cms.Handler(), trace);
    const double k = bench::MeasureMpps(kernel_cms.Handler(), trace);
    const double s = bench::MeasureMpps(enetstl_cms.Handler(), trace);
    bench::PrintSweepRow(std::to_string(rows), e, k, s);
    acc.Add(e, k, s);
  }
  acc.PrintSummary("CM sketch (paper: +47.9% avg, +70.9% @8 hashes)");
  return 0;
}
