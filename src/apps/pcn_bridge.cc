#include "apps/pcn_bridge.h"

#include <stdexcept>

#include "core/post_hash.h"
#include "obs/telemetry.h"

namespace apps {

// ---------------------------------------------------------------------------
// PcnAclStage
// ---------------------------------------------------------------------------

PcnAclStage::PcnAclStage(CoreKind core, const PcnBridgeConfig& config)
    : core_(core), config_(config) {
  if (core_ == CoreKind::kOrigin) {
    acl_map_ = std::make_unique<ebpf::HashMap<ebpf::FiveTuple, u32>>(
        config.acl_capacity);
  } else {
    acl_bloom_map_ =
        std::make_unique<ebpf::RawArrayMap>(1, config.acl_bits / 8);
  }
}

void PcnAclStage::BlockFlow(const ebpf::FiveTuple& tuple) {
  if (core_ == CoreKind::kOrigin) {
    acl_map_->UpdateElem(tuple, 1);
    return;
  }
  auto* bitmap = static_cast<ebpf::u64*>(acl_bloom_map_->LookupElem(0));
  if (bitmap != nullptr) {
    enetstl::HashSetBits(bitmap, config_.acl_hashes, config_.acl_bits - 1,
                         &tuple, sizeof(tuple), config_.seed);
  }
}

ebpf::XdpAction PcnAclStage::Process(ebpf::XdpContext& ctx) {
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return ebpf::XdpAction::kAborted;
  }
  if (core_ == CoreKind::kOrigin) {
    if (acl_map_->LookupElem(tuple) != nullptr) {
      return ebpf::XdpAction::kDrop;
    }
  } else {
    auto* bitmap = static_cast<ebpf::u64*>(acl_bloom_map_->LookupElem(0));
    if (bitmap != nullptr &&
        enetstl::HashTestBits(bitmap, config_.acl_hashes, config_.acl_bits - 1,
                              &tuple, sizeof(tuple), config_.seed)) {
      return ebpf::XdpAction::kDrop;
    }
  }
  return ebpf::XdpAction::kPass;
}

// ---------------------------------------------------------------------------
// PcnRateStage
// ---------------------------------------------------------------------------

PcnRateStage::PcnRateStage(CoreKind core, const PcnBridgeConfig& config)
    : core_(core), config_(config) {
  nf::CmsConfig cms_config;
  cms_config.rows = config.rate_rows;
  cms_config.cols = config.rate_cols;
  cms_config.seed = config.seed ^ 0x51ed270bu;
  if (core_ == CoreKind::kOrigin) {
    rate_sketch_ = std::make_unique<nf::CmsEbpf>(cms_config);
  } else {
    rate_sketch_ = std::make_unique<nf::CmsEnetstl>(cms_config);
  }
}

ebpf::XdpAction PcnRateStage::Process(ebpf::XdpContext& ctx) {
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    // Unreachable behind the ACL stage (it aborts unparseable packets), but
    // the stage stays a well-formed standalone NF.
    return ebpf::XdpAction::kAborted;
  }
  rate_sketch_->Update(&tuple.src_ip, sizeof(tuple.src_ip), 1);
  if (rate_sketch_->Query(&tuple.src_ip, sizeof(tuple.src_ip)) >
      config_.rate_threshold) {
    return ebpf::XdpAction::kDrop;
  }
  return ebpf::XdpAction::kPass;
}

// ---------------------------------------------------------------------------
// PcnRouteStage
// ---------------------------------------------------------------------------

PcnRouteStage::PcnRouteStage(const PcnBridgeConfig& config)
    : route_map_(config.route_capacity) {}

bool PcnRouteStage::AddRoute(u32 dst_ip, u32 port) {
  return route_map_.UpdateElem(dst_ip, port) == ebpf::kOk;
}

ebpf::XdpAction PcnRouteStage::Process(ebpf::XdpContext& ctx) {
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return ebpf::XdpAction::kAborted;
  }
  if (route_map_.LookupElem(tuple.dst_ip) != nullptr) {
    return ebpf::XdpAction::kTx;
  }
  return ebpf::XdpAction::kPass;  // punt to the stack
}

// ---------------------------------------------------------------------------
// PcnBridge facade
// ---------------------------------------------------------------------------

PcnBridge::PcnBridge(CoreKind core, const PcnBridgeConfig& config)
    : core_(core), chain_("pcn-chain") {
  auto acl = std::make_unique<PcnAclStage>(core, config);
  auto rate = std::make_unique<PcnRateStage>(core, config);
  auto route = std::make_unique<PcnRouteStage>(config);
  acl_ = acl.get();
  route_ = route.get();
  chain_.AddStage(std::move(acl));
  chain_.AddStage(std::move(rate));
  chain_.AddStage(std::move(route));
  const ebpf::VerifyResult result = chain_.Load();
  if (!result.ok) {
    throw std::logic_error("pcn-chain failed verification: " +
                           (result.errors.empty() ? std::string("?")
                                                  : result.errors.front()));
  }
  obs_scope_ = obs::Telemetry::Global().RegisterScope("app/pcn-chain");
}

void PcnBridge::BlockFlow(const ebpf::FiveTuple& tuple) {
  acl_->BlockFlow(tuple);
}

bool PcnBridge::AddRoute(u32 dst_ip, u32 port) {
  return route_->AddRoute(dst_ip, port);
}

ebpf::XdpAction PcnBridge::Process(ebpf::XdpContext& ctx) {
  // Facade-level sample: whole-walk latency, complementing the chain's
  // per-stage scopes.
  obs::ScalarSample sample(obs_scope_);
  if (sample.armed()) {
    sample.set_flow(obs::FlowOf(ctx));
  }
  return chain_.Process(ctx);
}

void PcnBridge::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                             ebpf::XdpAction* verdicts) {
  chain_.ProcessBurst(ctxs, count, verdicts);
}

}  // namespace apps
