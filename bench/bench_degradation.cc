// Graceful-degradation benchmark (DESIGN.md "Robustness model"): quantifies
// what the fault-tolerance machinery costs when it is idle and what it
// absorbs when faults actually fire.
//
//  1. Insert-fault sweep — the cuckoo-switch FIB is built at 95% load under
//     forced kick-chain failure rates {0, 1e-4, 1e-3}; lookup throughput is
//     measured over the resulting (possibly stash-/migration-degraded)
//     table. Invariants: every inserted key resolvable, zero stash drops,
//     size exact.
//  2. Shard failover — an RSS-sharded run at each fault rate arms a one-shot
//     worker kill (rate 0 arms nothing); the surviving workers absorb the
//     dead shard's budget. Invariants: shard counts sum exactly to the
//     offered load, failover accounting balances, keys stay resolvable.
//
// Exit status: nonzero only when a deterministic invariant fails; throughput
// numbers are informational (shared-vCPU timing is not reproducible).
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "bench/bench_util.h"
#include "core/fault_injector.h"
#include "nf/cuckoo_switch.h"
#include "pktgen/flowgen.h"
#include "pktgen/sharded_pipeline.h"

namespace {

using bench::u32;
using bench::u64;
using enetstl::FaultInjector;

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) {
    ++g_failures;
  }
}

constexpr double kRates[] = {0.0, 1e-4, 1e-3};

nf::CuckooSwitchConfig SwitchConfig() {
  nf::CuckooSwitchConfig config;
  config.num_buckets = 1024;  // x8 slots = 8192 capacity
  return config;
}

// Builds a kernel-variant FIB at 95% load with the given forced
// kick-failure rate armed, checks losslessness, and returns it.
std::unique_ptr<nf::CuckooSwitchKernel> BuildDegraded(
    double rate, const std::vector<ebpf::FiveTuple>& resident) {
  FaultInjector::Global().Reset();
  if (rate > 0.0) {
    FaultInjector::Global().ArmProbability("cuckoo_switch.insert", rate,
                                           0xbadc0de);
  }
  auto sw = std::make_unique<nf::CuckooSwitchKernel>(SwitchConfig());
  bool inserts_ok = true;
  for (u32 i = 0; i < resident.size(); ++i) {
    inserts_ok &= sw->Insert(resident[i], i + 1);
  }
  FaultInjector::Global().Disarm("cuckoo_switch.insert");
  Check(inserts_ok, "every insert succeeded (stash/resize absorbed faults)");
  Check(sw->size() == resident.size(), "size matches inserted count");
  Check(sw->degrade_stats().stash_drops == 0, "zero stash drops");
  bool lookups_ok = true;
  for (u32 i = 0; i < resident.size(); ++i) {
    lookups_ok &= sw->Lookup(resident[i]) == std::optional<u64>(i + 1);
  }
  Check(lookups_ok, "every pre-fault key resolvable with its exact value");
  return sw;
}

void InsertFaultSweep() {
  bench::PrintHeader(
      "Degradation 1: lookup throughput over a fault-degraded FIB");
  const auto sw0 = std::make_unique<nf::CuckooSwitchKernel>(SwitchConfig());
  const u32 n = sw0->capacity() * 95 / 100;
  const auto resident = pktgen::MakeFlowPopulation(n, 404);
  const auto trace = pktgen::MakeUniformTrace(resident, 8192, 405);

  std::printf("%-12s %14s %12s %10s %10s\n", "fault_rate", "lookup(Mpps)",
              "fires", "stash", "resizes");
  for (const double rate : kRates) {
    std::printf("rate %-7g\n", rate);
    const auto sw = BuildDegraded(rate, resident);
    const u64 fires = FaultInjector::Global().fires("cuckoo_switch.insert");
    if (rate >= 1e-3) {
      // ~8 expected fires at 1e-3 over a 95% fill; at 1e-4 the expectation
      // is below one, so zero fires is a legitimate outcome there.
      Check(fires > 0, "armed fault point actually fired");
    }
    const double mpps = bench::MeasureMpps(sw->Handler(), trace);
    std::printf("%-12g %14.2f %12llu %10u %10llu\n", rate, mpps,
                static_cast<unsigned long long>(fires), sw->stash_size(),
                static_cast<unsigned long long>(
                    sw->degrade_stats().resizes_completed));
  }
}

void ShardFailoverSweep() {
  bench::PrintHeader(
      "Degradation 2: RSS shard failover under a seeded worker kill");
  constexpr u32 kWorkers = 4;
  const auto flows = pktgen::MakeFlowPopulation(2048, 406);
  const auto trace = pktgen::MakeUniformTrace(flows, 8192, 407);

  std::printf("%-12s %12s %10s %12s %14s\n", "fault_rate", "agg(Mpps)",
              "failed", "failover", "wall(ms)");
  for (const double rate : kRates) {
    std::printf("rate %-7g\n", rate);
    FaultInjector::Global().Reset();
    // The insert-fault rate also runs while each replica is built; the kill
    // itself is a one-shot so the run loses exactly one worker.
    if (rate > 0.0) {
      FaultInjector::Global().ArmProbability("cuckoo_switch.insert", rate,
                                             0xfeedface);
      FaultInjector::Global().ArmOneShot("shard.kill.1", 50);
    }
    std::vector<std::unique_ptr<nf::CuckooSwitchKernel>> replicas;
    bool built_ok = true;
    for (u32 w = 0; w < kWorkers; ++w) {
      replicas.push_back(
          std::make_unique<nf::CuckooSwitchKernel>(SwitchConfig()));
      for (u32 f = 0; f < flows.size(); ++f) {
        built_ok &= replicas[w]->Insert(flows[f], f + 1);
      }
    }
    Check(built_ok, "replica build lossless under insert faults");

    pktgen::ShardedPipeline::Options opts;
    opts.num_workers = kWorkers;
    opts.burst_size = 32;
    opts.warmup_packets = 5'000;
    opts.measure_packets = 200'000;
    opts.rss_seed = 11;
    const auto result =
        pktgen::ShardedPipeline(opts).MeasureThroughput(
            [&replicas](u32 cpu) -> pktgen::ShardedPipeline::BurstHandler {
              nf::CuckooSwitchKernel* nf = replicas[cpu].get();
              return [nf](ebpf::XdpContext* ctxs, u32 count,
                          ebpf::XdpAction* verdicts) {
                nf->ProcessBurst(ctxs, count, verdicts);
              };
            },
            trace);

    u64 shard_sum = 0, degraded_sum = 0;
    for (const auto& shard : result.shards) {
      shard_sum += shard.stats.packets;
      degraded_sum += shard.stats.degraded;
    }
    Check(shard_sum == opts.measure_packets,
          "per-shard counts sum exactly to the offered load");
    Check(result.total.packets == opts.measure_packets,
          "global packet count exact despite the kill");
    Check(degraded_sum == result.failover_packets,
          "absorbed-packet accounting balances");
    Check(result.total.dropped == 0 && result.total.aborted == 0,
          "no packet misses a resident key");
    if (rate > 0.0) {
      Check(result.failed_workers == 1, "exactly one worker was killed");
      Check(result.failover_packets > 0, "survivors absorbed the dead shard");
    } else {
      Check(result.failed_workers == 0, "no kill armed, no failover");
    }
    bool keys_ok = true;
    for (u32 w = 0; w < kWorkers; ++w) {
      for (u32 f = 0; f < flows.size(); ++f) {
        keys_ok &= replicas[w]->Lookup(flows[f]) == std::optional<u64>(f + 1);
      }
    }
    Check(keys_ok, "every pre-fault key resolvable on every replica");

    std::printf("%-12g %12.2f %10u %12llu %14.2f\n", rate,
                result.total.pps / 1e6, result.failed_workers,
                static_cast<unsigned long long>(result.failover_packets),
                result.wall_seconds * 1e3);
  }
  FaultInjector::Global().Reset();
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  InsertFaultSweep();
  ShardFailoverSweep();
  std::printf("\n%s (%d invariant failure%s)\n",
              g_failures == 0 ? "ALL INVARIANTS PASS" : "INVARIANT FAILURES",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}
