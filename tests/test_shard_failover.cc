// Shard-failover tests: RSS indirection rebuild, exact accounting when a
// worker dies mid-measurement, and the end-to-end acceptance run — a
// million-packet sharded measurement over pre-populated cuckoo switches with
// a seeded worker kill, finishing with exact counters and every pre-fault
// key still resolvable.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/fault_injector.h"
#include "nf/cuckoo_switch.h"
#include "pktgen/flowgen.h"
#include "pktgen/sharded_pipeline.h"

namespace pktgen {
namespace {

using enetstl::FaultInjector;

// The injector is process-global and gtest runs every test in one process:
// each test starts and ends disarmed.
class ShardFailover : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST(RssIndirection, BuildIsRoundRobinOverQueues) {
  const auto table = BuildRssIndirection(3);
  ASSERT_EQ(table.size(), static_cast<std::size_t>(kRssIndirectionSize));
  for (u32 i = 0; i < kRssIndirectionSize; ++i) {
    EXPECT_EQ(table[i], i % 3u);
  }
  // Degenerate queue counts still produce a full, in-range table.
  for (const u32 q : BuildRssIndirection(0)) {
    EXPECT_EQ(q, 0u);
  }
  for (const u32 q : BuildRssIndirection(1)) {
    EXPECT_EQ(q, 0u);
  }
}

TEST(RssIndirection, RebuildReplacesOnlyDeadSlots) {
  auto table = BuildRssIndirection(4);
  const auto before = table;
  RebuildRssIndirection(table, {true, false, true, true});
  u32 reassigned[4] = {0, 0, 0, 0};
  for (u32 i = 0; i < kRssIndirectionSize; ++i) {
    EXPECT_NE(table[i], 1u);  // no slot points at the dead queue
    if (before[i] != 1u) {
      EXPECT_EQ(table[i], before[i]);  // live flows keep their affinity
    } else {
      ASSERT_LT(table[i], 4u);
      ++reassigned[table[i]];
    }
  }
  // 32 orphaned slots spread round-robin over 3 survivors: 11/11/10.
  EXPECT_EQ(reassigned[0] + reassigned[2] + reassigned[3],
            kRssIndirectionSize / 4);
  EXPECT_GE(reassigned[0], 10u);
  EXPECT_GE(reassigned[2], 10u);
  EXPECT_GE(reassigned[3], 10u);
}

TEST(RssIndirection, RebuildWithNoSurvivorsIsANoOp) {
  auto table = BuildRssIndirection(2);
  const auto before = table;
  RebuildRssIndirection(table, {false, false});
  EXPECT_EQ(table, before);
}

TEST(RssIndirection, RebuildSendsOrphansToTheLeastLoadedSurvivor) {
  auto table = BuildRssIndirection(4);
  const auto before = table;
  // Queue 1 dies. Queue 2 is nearly idle; 0 and 3 carry real backlog. The
  // orphaned load share (1710/128 = 13 per slot, 32 slots = 416 packets)
  // never catches up with queue 3's 500, so every orphan lands on queue 2.
  RebuildRssIndirection(table, {true, false, true, true},
                        {1000, 200, 10, 500});
  for (u32 i = 0; i < kRssIndirectionSize; ++i) {
    if (before[i] == 1u) {
      EXPECT_EQ(table[i], 2u) << "slot " << i;
    } else {
      EXPECT_EQ(table[i], before[i]) << "slot " << i;
    }
  }
}

TEST(RssIndirection, RebuildSpillsOverWhenTheLeastLoadedFillsUp) {
  auto table = BuildRssIndirection(4);
  const auto before = table;
  // Queue 2 starts below queue 3 but absorbs slot shares until it crosses
  // it, after which the remaining orphans alternate between the two. Queue 0
  // is far too loaded to ever absorb anything.
  RebuildRssIndirection(table, {true, false, true, true}, {1000, 200, 10, 60});
  u32 reassigned[4] = {0, 0, 0, 0};
  for (u32 i = 0; i < kRssIndirectionSize; ++i) {
    if (before[i] == 1u) {
      ++reassigned[table[i]];
    } else {
      EXPECT_EQ(table[i], before[i]);
    }
  }
  EXPECT_EQ(reassigned[0], 0u);
  EXPECT_EQ(reassigned[1], 0u);
  EXPECT_GT(reassigned[2], 0u);
  EXPECT_GT(reassigned[3], 0u);
  EXPECT_GT(reassigned[2], reassigned[3]);  // it started lighter
  EXPECT_EQ(reassigned[2] + reassigned[3], kRssIndirectionSize / 4);
}

TEST(RssIndirection, RebuildWithDepthsAndNoSurvivorsIsANoOp) {
  auto table = BuildRssIndirection(4);
  const auto before = table;
  RebuildRssIndirection(table, {false, false, false, false},
                        {100, 200, 300, 400});
  EXPECT_EQ(table, before);
}

TEST(RssIndirection, RebuildSingleSurvivorAbsorbsEverything) {
  auto table = BuildRssIndirection(4);
  RebuildRssIndirection(table, {false, false, true, false},
                        {500, 400, 100, 300});
  for (const u32 q : table) {
    EXPECT_EQ(q, 2u);
  }
}

TEST(RssIndirection, SteeringFollowsTheTable) {
  const auto flows = MakeFlowPopulation(256, 31);
  auto table = BuildRssIndirection(4);
  RebuildRssIndirection(table, {true, true, false, true});
  for (const auto& flow : flows) {
    const u32 q = RssQueueViaIndirection(flow, table, 7);
    EXPECT_LT(q, 4u);
    EXPECT_NE(q, 2u);  // dead queue is unreachable after the rebuild
    EXPECT_EQ(q, RssQueueViaIndirection(flow, table, 7));  // deterministic
  }
}

TEST(RssIndirection, UnparseablePacketLandsOnTheSlotZeroQueue) {
  Packet junk{};  // all-zero frame: no EtherType, 5-tuple parse fails
  std::vector<u32> table(kRssIndirectionSize, 3);
  table[0] = 7;
  EXPECT_EQ(RssQueueForPacketViaIndirection(junk, table, 9), 7u);
  EXPECT_EQ(RssQueueForPacketViaIndirection(junk, {}, 9), 0u);
  EXPECT_EQ(RssSlotForPacket(junk, kRssIndirectionSize, 9), 0u);
}

TEST(RssIndirection, NonDividingTableSizesStayInRangeAndDeterministic) {
  const auto flows = MakeFlowPopulation(256, 61);
  const auto trace = MakeUniformTrace(flows, 512, 62);
  // Sizes that do not divide (or are not divided by) the queue count or the
  // canonical 128: steering must stay in range, be deterministic, and reach
  // more than one queue once the table is big enough to alias several slots
  // per queue.
  for (const u32 size : {1u, 3u, 5u, 96u, 100u, 127u}) {
    std::vector<u32> table(size);
    for (u32 i = 0; i < size; ++i) {
      table[i] = i % 4u;
    }
    u32 hits[4] = {0, 0, 0, 0};
    for (const auto& flow : flows) {
      const u32 q = RssQueueViaIndirection(flow, table, 7);
      ASSERT_LT(q, 4u);
      EXPECT_EQ(q, RssQueueViaIndirection(flow, table, 7));
      ++hits[q];
    }
    if (size >= 96u) {
      for (const u32 h : hits) {
        EXPECT_GT(h, 0u) << "table size " << size;
      }
    }
    for (const auto& packet : trace) {
      ASSERT_LT(RssSlotForPacket(packet, size, 7), size);
    }
  }
  // Degenerate sizes collapse to slot 0.
  EXPECT_EQ(RssSlotForPacket(trace[0], 0, 7), 0u);
  EXPECT_EQ(RssSlotForPacket(trace[0], 1, 7), 0u);
}

TEST(RssIndirection, SlotAndQueueSteeringAgree) {
  // The scale-out engine splits its trace with RssSlotForPacket and then
  // steers by table[slot]; both must name the same queue the packet-level
  // steering helper does.
  const auto flows = MakeFlowPopulation(256, 63);
  const auto trace = MakeUniformTrace(flows, 512, 64);
  const auto table = BuildRssIndirection(5);
  for (const auto& packet : trace) {
    const u32 slot = RssSlotForPacket(packet, kRssIndirectionSize, 11);
    EXPECT_EQ(RssQueueForPacketViaIndirection(packet, table, 11), table[slot]);
  }
}

TEST(RssIndirection, SeedChangesTheSteering) {
  const auto flows = MakeFlowPopulation(256, 65);
  const auto table = BuildRssIndirection(8);
  u32 moved = 0;
  for (const auto& flow : flows) {
    if (RssQueueViaIndirection(flow, table, 7) !=
        RssQueueViaIndirection(flow, table, 8)) {
      ++moved;
    }
  }
  // CRC seed sensitivity: a different seed re-shuffles a healthy fraction of
  // the flows (exact count is hash-dependent; zero would mean the seed is
  // dead weight).
  EXPECT_GT(moved, 64u);
}

TEST_F(ShardFailover, KilledWorkerIsDrainedWithExactAccounting) {
  const auto flows = MakeFlowPopulation(512, 33);
  const auto trace = MakeUniformTrace(flows, 4096, 34);
  ShardedPipeline::Options opts;
  opts.num_workers = 3;
  opts.burst_size = 16;
  opts.warmup_packets = 100;
  opts.measure_packets = 30'000;
  const ShardedPipeline pipeline(opts);

  // Worker 1 dies on its 6th measured burst.
  FaultInjector::Global().ArmOneShot("shard.kill.1", 5);

  const auto result = pipeline.MeasureThroughput(
      [](u32) -> ShardedPipeline::BurstHandler {
        return [](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
          for (u32 i = 0; i < count; ++i) {
            verdicts[i] = ebpf::XdpAction::kPass;
          }
        };
      },
      trace);

  EXPECT_EQ(result.failed_workers, 1u);
  ASSERT_EQ(result.shards.size(), 3u);
  EXPECT_TRUE(result.shards[1].failed);
  EXPECT_FALSE(result.shards[0].failed);
  EXPECT_FALSE(result.shards[2].failed);

  // The dead shard served exactly 5 bursts before the kill fired.
  EXPECT_EQ(result.shards[1].stats.packets, 5u * 16u);
  EXPECT_EQ(result.shards[1].stats.degraded, 0u);

  // Its unserved budget was replayed on the survivors: the shard counts
  // still sum exactly to measure_packets, and the absorbed packets are
  // surfaced as degraded on the absorbing shards.
  u64 packets = 0, degraded = 0, verdicts_total = 0;
  for (const auto& shard : result.shards) {
    packets += shard.stats.packets;
    degraded += shard.stats.degraded;
    verdicts_total +=
        shard.stats.dropped + shard.stats.passed + shard.stats.aborted;
  }
  EXPECT_EQ(packets, opts.measure_packets);
  EXPECT_EQ(result.total.packets, opts.measure_packets);
  EXPECT_EQ(verdicts_total, opts.measure_packets);
  EXPECT_GT(result.failover_packets, 0u);
  EXPECT_EQ(degraded, result.failover_packets);
  EXPECT_EQ(result.total.degraded, result.failover_packets);
  // The replayed budget is exactly what the dead worker left unserved.
  u64 primary_served = 0;
  for (const auto& shard : result.shards) {
    primary_served += shard.stats.packets - shard.stats.degraded;
  }
  EXPECT_EQ(result.failover_packets, opts.measure_packets - primary_served);
}

TEST_F(ShardFailover, NoFaultMeansNoFailover) {
  const auto flows = MakeFlowPopulation(128, 35);
  const auto trace = MakeUniformTrace(flows, 1024, 36);
  ShardedPipeline::Options opts;
  opts.num_workers = 2;
  opts.burst_size = 16;
  opts.warmup_packets = 0;
  opts.measure_packets = 10'000;
  const auto result = ShardedPipeline(opts).MeasureThroughput(
      [](u32) -> ShardedPipeline::BurstHandler {
        return [](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
          for (u32 i = 0; i < count; ++i) {
            verdicts[i] = ebpf::XdpAction::kDrop;
          }
        };
      },
      trace);
  EXPECT_EQ(result.failed_workers, 0u);
  EXPECT_EQ(result.failover_packets, 0u);
  EXPECT_EQ(result.total.degraded, 0u);
  EXPECT_EQ(result.total.packets, opts.measure_packets);
  for (const auto& shard : result.shards) {
    EXPECT_FALSE(shard.failed);
  }
}

TEST_F(ShardFailover, AllWorkersDeadDropsTheUnservedBudget) {
  const auto flows = MakeFlowPopulation(64, 37);
  const auto trace = MakeUniformTrace(flows, 512, 38);
  ShardedPipeline::Options opts;
  opts.num_workers = 1;
  opts.burst_size = 16;
  opts.warmup_packets = 0;
  opts.measure_packets = 1'000;
  FaultInjector::Global().ArmOneShot("shard.kill.0", 0);  // dies immediately
  const auto result = ShardedPipeline(opts).MeasureThroughput(
      [](u32) -> ShardedPipeline::BurstHandler {
        return [](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
          for (u32 i = 0; i < count; ++i) {
            verdicts[i] = ebpf::XdpAction::kPass;
          }
        };
      },
      trace);
  EXPECT_EQ(result.failed_workers, 1u);
  EXPECT_EQ(result.failover_packets, 0u);  // nobody left to fail over to
  EXPECT_EQ(result.total.packets, 0u);     // honest shortfall, no crash
}

// Acceptance: a million-packet sharded run over per-worker cuckoo-switch
// replicas with a seeded mid-run worker kill. Must finish with exact
// counters and every pre-fault key still resolvable on every replica.
TEST_F(ShardFailover, MillionPacketRunSurvivesSeededWorkerKill) {
  constexpr u32 kWorkers = 4;
  constexpr u32 kFlows = 2048;
  const auto flows = MakeFlowPopulation(kFlows, 41);
  const auto trace = MakeUniformTrace(flows, 8192, 42);

  // Each worker owns a full replica of the FIB (the CuckooSwitch deployment
  // shape: the control plane programs every core's table identically).
  std::vector<std::unique_ptr<nf::CuckooSwitchKernel>> replicas;
  nf::CuckooSwitchConfig config;
  config.num_buckets = 1024;
  for (u32 w = 0; w < kWorkers; ++w) {
    replicas.push_back(std::make_unique<nf::CuckooSwitchKernel>(config));
    for (u32 f = 0; f < kFlows; ++f) {
      ASSERT_TRUE(replicas[w]->Insert(flows[f], f + 1));
    }
  }

  ShardedPipeline::Options opts;
  opts.num_workers = kWorkers;
  opts.burst_size = 32;
  opts.warmup_packets = 1'000;
  opts.measure_packets = 1'000'000;
  opts.rss_seed = 43;
  const ShardedPipeline pipeline(opts);

  // Worker 2 dies partway through its measured window.
  FaultInjector::Global().ArmOneShot("shard.kill.2", 100);

  const auto result = pipeline.MeasureThroughput(
      [&replicas](u32 cpu) -> ShardedPipeline::BurstHandler {
        nf::CuckooSwitchKernel* nf = replicas[cpu].get();
        return [nf](ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) {
          nf->ProcessBurst(ctxs, count, verdicts);
        };
      },
      trace);

  // Exact accounting end to end: the kill cost zero packets.
  EXPECT_EQ(result.failed_workers, 1u);
  EXPECT_TRUE(result.shards[2].failed);
  EXPECT_EQ(result.total.packets, 1'000'000u);
  EXPECT_EQ(result.total.dropped + result.total.passed + result.total.aborted,
            1'000'000u);
  // Every flow is in every replica, so nothing may drop or abort.
  EXPECT_EQ(result.total.dropped, 0u);
  EXPECT_EQ(result.total.aborted, 0u);
  EXPECT_GT(result.failover_packets, 0u);
  EXPECT_EQ(result.total.degraded, result.failover_packets);
  u64 shard_sum = 0;
  for (const auto& shard : result.shards) {
    shard_sum += shard.stats.packets;
  }
  EXPECT_EQ(shard_sum, 1'000'000u);

  // Every pre-fault key is still resolvable on every replica (including the
  // dead worker's — its table was abandoned, not corrupted).
  for (u32 w = 0; w < kWorkers; ++w) {
    for (u32 f = 0; f < kFlows; ++f) {
      ASSERT_EQ(replicas[w]->Lookup(flows[f]), std::optional<u64>(f + 1))
          << "replica " << w << " flow " << f;
    }
  }
}

}  // namespace
}  // namespace pktgen
