// BPF-style linked list (bpf_list_head / bpf_obj_new utilities).
//
// The eBPF runtime exposes linked lists only under two constraints the paper
// identifies as performance problems:
//   1. Every push/pop must be performed while holding the bpf_spin_lock that
//      the verifier associates with the list head (lock coupling).
//   2. Nodes come from bpf_obj_new, i.e. an allocator call at the helper
//      boundary.
// BpfList models both: mutations are noinline, acquire the coupled lock, and
// nodes are drawn from a preallocated pool through an out-of-line allocator.
//
// Simulated eBPF NFs that need queues of elements use arrays of BpfList, one
// BPF map element per list — which is exactly the extra-helper-call pattern
// eNetSTL's list-buckets data structure is designed to replace.
#ifndef ENETSTL_EBPF_LINKLIST_H_
#define ENETSTL_EBPF_LINKLIST_H_

#include <vector>

#include "ebpf/helper.h"
#include "ebpf/spinlock.h"
#include "ebpf/types.h"

namespace ebpf {

// Shared node pool modeling the bpf_obj_new allocator. Elements are fixed
// size; the pool is sized at construction (bpf_mem_alloc prefills caches).
template <typename T>
class BpfObjPool {
 public:
  explicit BpfObjPool(u32 capacity) : nodes_(capacity) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "BPF objects must be flat types");
    for (u32 i = 0; i < capacity; ++i) {
      nodes_[i].next = (i + 1 < capacity) ? i + 1 : kNil;
    }
    free_head_ = capacity > 0 ? 0 : kNil;
  }

  static constexpr u32 kNil = 0xffffffffu;

  struct Node {
    T value{};
    u32 next = kNil;
    u32 prev = kNil;
  };

  ENETSTL_NOINLINE u32 Alloc() {
    CompilerBarrier();
    if (free_head_ == kNil) {
      return kNil;
    }
    const u32 idx = free_head_;
    free_head_ = nodes_[idx].next;
    nodes_[idx].next = kNil;
    nodes_[idx].prev = kNil;
    ++in_use_;
    return idx;
  }

  ENETSTL_NOINLINE void Free(u32 idx) {
    CompilerBarrier();
    nodes_[idx].next = free_head_;
    free_head_ = idx;
    --in_use_;
  }

  Node& node(u32 idx) { return nodes_[idx]; }
  const Node& node(u32 idx) const { return nodes_[idx]; }
  u32 in_use() const { return in_use_; }
  u32 capacity() const { return static_cast<u32>(nodes_.size()); }

 private:
  std::vector<Node> nodes_;
  u32 free_head_ = kNil;
  u32 in_use_ = 0;
};

// A bpf_list_head. All operations require the coupled lock, which they
// acquire and release internally (the verifier would reject code that does
// not hold it, so well-formed programs always pay it).
template <typename T>
class BpfList {
 public:
  using Pool = BpfObjPool<T>;
  static constexpr u32 kNil = Pool::kNil;

  BpfList() = default;

  // Pushes a value at the front. Returns false if the pool is exhausted.
  ENETSTL_NOINLINE bool PushFront(Pool& pool, BpfSpinLock& lock, const T& value) {
    const u32 idx = pool.Alloc();
    if (idx == kNil) {
      return false;
    }
    pool.node(idx).value = value;
    lock.Lock();
    pool.node(idx).next = head_;
    pool.node(idx).prev = kNil;
    if (head_ != kNil) {
      pool.node(head_).prev = idx;
    }
    head_ = idx;
    if (tail_ == kNil) {
      tail_ = idx;
    }
    ++size_;
    lock.Unlock();
    return true;
  }

  ENETSTL_NOINLINE bool PushBack(Pool& pool, BpfSpinLock& lock, const T& value) {
    const u32 idx = pool.Alloc();
    if (idx == kNil) {
      return false;
    }
    pool.node(idx).value = value;
    lock.Lock();
    pool.node(idx).prev = tail_;
    pool.node(idx).next = kNil;
    if (tail_ != kNil) {
      pool.node(tail_).next = idx;
    }
    tail_ = idx;
    if (head_ == kNil) {
      head_ = idx;
    }
    ++size_;
    lock.Unlock();
    return true;
  }

  // Pops from the front into *out. Returns false if empty.
  ENETSTL_NOINLINE bool PopFront(Pool& pool, BpfSpinLock& lock, T* out) {
    lock.Lock();
    if (head_ == kNil) {
      lock.Unlock();
      return false;
    }
    const u32 idx = head_;
    head_ = pool.node(idx).next;
    if (head_ != kNil) {
      pool.node(head_).prev = kNil;
    } else {
      tail_ = kNil;
    }
    --size_;
    lock.Unlock();
    *out = pool.node(idx).value;
    pool.Free(idx);
    return true;
  }

  ENETSTL_NOINLINE bool PopBack(Pool& pool, BpfSpinLock& lock, T* out) {
    lock.Lock();
    if (tail_ == kNil) {
      lock.Unlock();
      return false;
    }
    const u32 idx = tail_;
    tail_ = pool.node(idx).prev;
    if (tail_ != kNil) {
      pool.node(tail_).next = kNil;
    } else {
      head_ = kNil;
    }
    --size_;
    lock.Unlock();
    *out = pool.node(idx).value;
    pool.Free(idx);
    return true;
  }

  bool Empty() const { return head_ == kNil; }
  u32 size() const { return size_; }

 private:
  u32 head_ = kNil;
  u32 tail_ = kNil;
  u32 size_ = 0;
};

}  // namespace ebpf

#endif  // ENETSTL_EBPF_LINKLIST_H_
