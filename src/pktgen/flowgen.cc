#include "pktgen/flowgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pktgen {

Rng::Rng(u64 seed) {
  auto splitmix = [](u64& z) {
    z += 0x9e3779b97f4a7c15ull;
    u64 v = z;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    return v ^ (v >> 31);
  };
  u64 z = seed;
  s0_ = splitmix(z);
  s1_ = splitmix(z);
  if (s0_ == 0 && s1_ == 0) {
    s0_ = 0x1234567890abcdefull;
  }
}

u64 Rng::NextU64() {
  u64 x = s0_;
  const u64 y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

u64 Rng::NextBounded(u64 bound) {
  if (bound == 0) {
    return 0;
  }
  return NextU64() % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::vector<FiveTuple> MakeFlowPopulation(u32 count, u64 seed) {
  Rng rng(seed);
  std::vector<FiveTuple> flows;
  flows.reserve(count);
  for (u32 i = 0; i < count; ++i) {
    FiveTuple t;
    t.src_ip = 0x0a000000u | (i & 0x00ffffffu);  // 10.x.y.z, unique per flow
    t.dst_ip = rng.NextU32() | 0x01000000u;
    t.src_port = static_cast<u16>(1024 + (rng.NextU32() % 60000));
    t.dst_port = static_cast<u16>(1 + (i % 1024));
    t.protocol = (rng.NextU32() & 1u) ? 6 : 17;  // TCP or UDP
    flows.push_back(t);
  }
  return flows;
}

Trace MakeUniformTrace(const std::vector<FiveTuple>& flows, u32 length,
                       u64 seed) {
  Rng rng(seed);
  Trace trace;
  trace.reserve(length);
  for (u32 i = 0; i < length; ++i) {
    const auto& flow = flows[rng.NextBounded(flows.size())];
    trace.push_back(Packet::FromTuple(flow));
  }
  return trace;
}

Trace MakeZipfTrace(const std::vector<FiveTuple>& flows, u32 length,
                    double alpha, u64 seed) {
  Rng rng(seed);
  // Cumulative Zipf mass over ranks 1..N; sampled by binary search.
  const std::size_t n = flows.size();
  std::vector<double> cdf(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf[i] = total;
  }
  Trace trace;
  trace.reserve(length);
  for (u32 i = 0; i < length; ++i) {
    const double u = rng.NextDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t rank =
        static_cast<std::size_t>(std::distance(cdf.begin(), it));
    trace.push_back(Packet::FromTuple(flows[std::min(rank, n - 1)]));
  }
  return trace;
}

Trace MakeOpMixTrace(const std::vector<FiveTuple>& flows, u32 length,
                     double lookup_w, double update_w, double delete_w,
                     u64 seed) {
  Rng rng(seed);
  const double total = lookup_w + update_w + delete_w;
  Trace trace;
  trace.reserve(length);
  for (u32 i = 0; i < length; ++i) {
    const auto& flow = flows[rng.NextBounded(flows.size())];
    Packet p = Packet::FromTuple(flow);
    const double u = rng.NextDouble() * total;
    KvOp op = KvOp::kLookup;
    if (u >= lookup_w) {
      op = (u < lookup_w + update_w) ? KvOp::kUpdate : KvOp::kDelete;
    }
    p.SetPayloadWord(0, static_cast<u32>(op));
    trace.push_back(p);
  }
  return trace;
}

Trace MakeQueueingTrace(const std::vector<FiveTuple>& flows, u32 length,
                        u32 horizon, u64 seed) {
  Rng rng(seed);
  Trace trace;
  trace.reserve(length);
  for (u32 i = 0; i < length; ++i) {
    const auto& flow = flows[rng.NextBounded(flows.size())];
    Packet p = Packet::FromTuple(flow);
    p.SetPayloadWord(0, i & 1u);  // alternate enqueue/dequeue
    p.SetPayloadWord(1, static_cast<u32>(rng.NextBounded(horizon)));
    trace.push_back(p);
  }
  return trace;
}

Trace MakeSynFloodTrace(const FiveTuple& victim, u32 length, u64 seed) {
  // Murmur3 fmix32: a bijection on u32, so distinct packet indices map to
  // distinct spoofed source ips — unique-source spraying by construction.
  auto fmix32 = [](u32 x) {
    x ^= x >> 16;
    x *= 0x85ebca6bu;
    x ^= x >> 13;
    x *= 0xc2b2ae35u;
    x ^= x >> 16;
    return x;
  };
  const u32 salt_ip = static_cast<u32>(seed);
  const u32 salt_port = static_cast<u32>(seed >> 32) | 1u;
  Trace trace;
  trace.reserve(length);
  for (u32 i = 0; i < length; ++i) {
    FiveTuple t;
    t.src_ip = fmix32(i) ^ salt_ip;  // bijective in i -> unique per packet
    t.src_port = static_cast<u16>(1024 + (fmix32(i ^ salt_port) % 60000));
    t.dst_ip = victim.dst_ip;
    t.dst_port = victim.dst_port;
    t.protocol = 6;  // TCP
    Packet p = Packet::FromTuple(t);
    p.frame[ebpf::kL4HeaderOffset + 13] = 0x02;  // TCP SYN flag byte
    trace.push_back(p);
  }
  return trace;
}

bool SaveTraceCsv(const Trace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  for (const Packet& p : trace) {
    ebpf::XdpContext ctx{const_cast<u8*>(p.frame),
                         const_cast<u8*>(p.frame) + ebpf::kFrameSize, 0};
    FiveTuple t;
    if (!ebpf::ParseFiveTuple(ctx, &t)) {
      continue;
    }
    std::fprintf(f, "%u,%u,%u,%u,%u,%u,%u\n", t.src_ip, t.dst_ip, t.src_port,
                 t.dst_port, t.protocol, p.PayloadWord(0), p.PayloadWord(1));
  }
  return std::fclose(f) == 0;
}

Trace LoadTraceCsv(const std::string& path) {
  Trace trace;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return trace;
  }
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned src_ip, dst_ip, src_port, dst_port, protocol;
    unsigned w0 = 0, w1 = 0;
    const int fields = std::sscanf(line, "%u,%u,%u,%u,%u,%u,%u", &src_ip,
                                   &dst_ip, &src_port, &dst_port, &protocol,
                                   &w0, &w1);
    if (fields < 5) {
      continue;  // malformed line
    }
    FiveTuple t;
    t.src_ip = src_ip;
    t.dst_ip = dst_ip;
    t.src_port = static_cast<u16>(src_port);
    t.dst_port = static_cast<u16>(dst_port);
    t.protocol = static_cast<u8>(protocol);
    Packet p = Packet::FromTuple(t);
    if (fields >= 6) {
      p.SetPayloadWord(0, w0);
    }
    if (fields >= 7) {
      p.SetPayloadWord(1, w1);
    }
    trace.push_back(p);
  }
  std::fclose(f);
  return trace;
}

}  // namespace pktgen