#include "nf/cuckoo_filter.h"

#include "nf/nf_registry.h"

#include <cstring>

#include "core/compare.h"
#include "core/compare_inl.h"
#include "core/fault_injector.h"
#include "core/hash.h"
#include "core/hash_inl.h"

namespace nf {

namespace {

constexpr u32 kAltMix = 0x5bd1e995u;

// Fingerprint derived from the bucket hash via the nonlinear finalizer; a
// second seeded CRC would correlate with the bucket index and inflate the
// false-positive rate by orders of magnitude.
inline u16 MakeFp(u32 h) {
  const u16 fp = static_cast<u16>(enetstl::Fmix32(h) & 0xffffu);
  return fp == 0 ? u16{1} : fp;
}

inline u32 AltBucket(u32 bucket, u16 fp, u32 mask) {
  return (bucket ^ (static_cast<u32>(fp) * kAltMix)) & mask;
}

inline ebpf::s32 ScalarFindFp(const FilterBucket& b, u16 fp) {
  for (u32 s = 0; s < kFilterSlotsPerBucket; ++s) {
    if (b.fps[s] == fp) {
      return static_cast<ebpf::s32>(s);
    }
  }
  return -1;
}

// Shared displacement insert (fingerprints carry no key, so random-walk
// kicking loses nothing: a displaced fingerprint is re-placed each step).
// On kick exhaustion the new fingerprint is resident (the first kick wrote
// it) and the final in-hand fingerprint — a previously added one — is
// returned via *leftover_bucket / *leftover_fp for the caller to park;
// returns false without touching the size counter in that case.
template <typename FindFp>
bool GenericAdd(FilterBucket* buckets, u32 mask, u32 max_kicks, u64& rng,
                u32 b1, u16 fp, FindFp find_empty, u32* size,
                u32* leftover_bucket, u16* leftover_fp) {
  const u32 b2 = AltBucket(b1, fp, mask);
  for (u32 b : {b1, b2}) {
    const ebpf::s32 empty = find_empty(buckets[b], u16{0});
    if (empty >= 0) {
      buckets[b].fps[empty] = fp;
      ++*size;
      return true;
    }
  }
  // Random-walk kicks.
  u32 cur = (rng & 1u) ? b2 : b1;
  u16 in_hand = fp;
  for (u32 kick = 0; kick < max_kicks; ++kick) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const u32 victim = static_cast<u32>(rng) % kFilterSlotsPerBucket;
    const u16 displaced = buckets[cur].fps[victim];
    buckets[cur].fps[victim] = in_hand;
    in_hand = displaced;
    cur = AltBucket(cur, in_hand, mask);
    const ebpf::s32 empty = find_empty(buckets[cur], u16{0});
    if (empty >= 0) {
      buckets[cur].fps[empty] = in_hand;
      ++*size;
      return true;
    }
  }
  // Undo is impossible for a random walk: hand the in-hand fingerprint back
  // to the caller. `cur` is on its two-bucket orbit, so (cur, in_hand)
  // identifies it for stash membership checks.
  *leftover_bucket = cur;
  *leftover_fp = in_hand;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// CuckooFilterBase
// ---------------------------------------------------------------------------

void CuckooFilterBase::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                                    ebpf::XdpAction* verdicts) {
  ForEachNfChunk(count, [&](u32 start, u32 chunk) {
    ebpf::FiveTuple keys[kMaxNfBurst];
    bool member[kMaxNfBurst];
    u32 idx[kMaxNfBurst];
    u32 parsed = 0;
    for (u32 i = 0; i < chunk; ++i) {
      if (ebpf::ParseFiveTuple(ctxs[start + i], &keys[parsed])) {
        idx[parsed++] = start + i;
      } else {
        verdicts[start + i] = ebpf::XdpAction::kAborted;
      }
    }
    ContainsBatch(keys, parsed, member);
    for (u32 i = 0; i < parsed; ++i) {
      verdicts[idx[i]] =
          member[i] ? ebpf::XdpAction::kPass : ebpf::XdpAction::kDrop;
    }
  });
}

std::optional<FusedKeyOp> CuckooFilterBase::LowerToKeyOp() {
  FusedKeyOp op;
  op.contains = [this](const ebpf::FiveTuple* keys, u32 n, bool* out) {
    ContainsBatch(keys, n, out);
  };
  return op;
}

bool CuckooFilterBase::AddWithStash(FilterBucket* buckets, u32 h,
                                    FindFpFn find_empty) {
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  // Forced kick-chain exhaustion: skip placement, park the new fingerprint.
  u32 leftover_bucket = b1;
  u16 leftover_fp = fp;
  const bool forced =
      enetstl::FaultInjector::Global().ShouldFail("cuckoo_filter.add");
  if (!forced &&
      GenericAdd(buckets, bucket_mask_, config_.max_kicks, kick_rng_, b1, fp,
                 find_empty, &size_, &leftover_bucket, &leftover_fp)) {
    return true;
  }
  if (stash_.size() < config_.stash_capacity) {
    stash_.push_back(FpStashEntry{leftover_bucket, leftover_fp});
    ++degrade_stats_.stash_parks;
    degraded_ = true;
    ++size_;
    return true;
  }
  // Stash full: historical lossy failure mode — the in-hand fingerprint
  // overwrites a pseudo-random slot of its current bucket (net table
  // population unchanged, so size_ stays consistent without an increment).
  kick_rng_ ^= kick_rng_ << 13;
  kick_rng_ ^= kick_rng_ >> 7;
  kick_rng_ ^= kick_rng_ << 17;
  buckets[leftover_bucket]
      .fps[static_cast<u32>(kick_rng_) % kFilterSlotsPerBucket] = leftover_fp;
  ++degrade_stats_.stash_drops;
  return false;
}

bool CuckooFilterBase::StashContains(u32 b1, u16 fp) const {
  for (const FpStashEntry& e : stash_) {
    if (e.fp == fp &&
        (e.bucket == b1 || e.bucket == AltBucket(b1, fp, bucket_mask_))) {
      return true;
    }
  }
  return false;
}

bool CuckooFilterBase::StashRemove(u32 b1, u16 fp) {
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    const FpStashEntry& e = stash_[i];
    if (e.fp == fp &&
        (e.bucket == b1 || e.bucket == AltBucket(b1, fp, bucket_mask_))) {
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      degraded_ = !stash_.empty();
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// CuckooFilterEbpf
// ---------------------------------------------------------------------------

CuckooFilterEbpf::CuckooFilterEbpf(const CuckooFilterConfig& config)
    : CuckooFilterBase(config),
      table_map_(1, config.num_buckets * sizeof(FilterBucket)) {}

bool CuckooFilterEbpf::Add(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::XxHash32Bpf(&key, sizeof(key), config_.seed);
  return AddWithStash(buckets, h, ScalarFindFp);
}

bool CuckooFilterEbpf::Contains(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::XxHash32Bpf(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  if (ScalarFindFp(buckets[b1], fp) >= 0) {
    return true;
  }
  const u32 b2 = AltBucket(b1, fp, bucket_mask_);
  if (ScalarFindFp(buckets[b2], fp) >= 0) {
    return true;
  }
  return degraded() && StashContains(b1, fp);
}

bool CuckooFilterEbpf::Remove(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::XxHash32Bpf(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  for (u32 b : {b1, AltBucket(b1, fp, bucket_mask_)}) {
    const ebpf::s32 slot = ScalarFindFp(buckets[b], fp);
    if (slot >= 0) {
      buckets[b].fps[slot] = 0;
      --size_;
      return true;
    }
  }
  if (degraded() && StashRemove(b1, fp)) {
    --size_;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CuckooFilterKernel
// ---------------------------------------------------------------------------

CuckooFilterKernel::CuckooFilterKernel(const CuckooFilterConfig& config)
    : CuckooFilterBase(config), buckets_(config.num_buckets) {
  std::memset(buckets_.data(), 0, buckets_.size() * sizeof(FilterBucket));
}

namespace {

inline ebpf::s32 KernelFindFp(const FilterBucket& b, u16 fp) {
  return enetstl::internal::FindU16Impl(b.fps, kFilterSlotsPerBucket, fp);
}

}  // namespace

bool CuckooFilterKernel::Add(const ebpf::FiveTuple& key) {
  const u32 h =
      enetstl::internal::HwHashCrcImpl(&key, sizeof(key), config_.seed);
  return AddWithStash(buckets_.data(), h, KernelFindFp);
}

bool CuckooFilterKernel::Contains(const ebpf::FiveTuple& key) {
  const u32 h =
      enetstl::internal::HwHashCrcImpl(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  if (KernelFindFp(buckets_[b1], fp) >= 0) {
    return true;
  }
  if (KernelFindFp(buckets_[AltBucket(b1, fp, bucket_mask_)], fp) >= 0) {
    return true;
  }
  return degraded() && StashContains(b1, fp);
}

bool CuckooFilterKernel::Remove(const ebpf::FiveTuple& key) {
  const u32 h =
      enetstl::internal::HwHashCrcImpl(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  for (u32 b : {b1, AltBucket(b1, fp, bucket_mask_)}) {
    const ebpf::s32 slot = KernelFindFp(buckets_[b], fp);
    if (slot >= 0) {
      buckets_[b].fps[slot] = 0;
      --size_;
      return true;
    }
  }
  if (degraded() && StashRemove(b1, fp)) {
    --size_;
    return true;
  }
  return false;
}

void CuckooFilterKernel::ContainsBatch(const ebpf::FiveTuple* keys, u32 n,
                                       bool* out) {
  FilterBucket* buckets = buckets_.data();
  ForEachNfChunk(n, [&](u32 start, u32 chunk) {
    u16 fp[kMaxNfBurst];
    u32 b1[kMaxNfBurst];
    // Stage 1: hash the burst, prefetch every primary bucket.
    for (u32 i = 0; i < chunk; ++i) {
      const u32 h = enetstl::internal::HwHashCrcImpl(
          &keys[start + i], sizeof(ebpf::FiveTuple), config_.seed);
      fp[i] = MakeFp(h);
      b1[i] = h & bucket_mask_;
      enetstl::internal::PrefetchRead(&buckets[b1[i]]);
    }
    // Stage 2: fingerprint search across both candidate buckets.
    for (u32 i = 0; i < chunk; ++i) {
      out[start + i] =
          KernelFindFp(buckets[b1[i]], fp[i]) >= 0 ||
          KernelFindFp(buckets[AltBucket(b1[i], fp[i], bucket_mask_)],
                       fp[i]) >= 0 ||
          (degraded() && StashContains(b1[i], fp[i]));
    }
  });
}

// ---------------------------------------------------------------------------
// CuckooFilterEnetstl
// ---------------------------------------------------------------------------

CuckooFilterEnetstl::CuckooFilterEnetstl(const CuckooFilterConfig& config)
    : CuckooFilterBase(config),
      table_map_(1, config.num_buckets * sizeof(FilterBucket)) {}

namespace {

inline ebpf::s32 EnetstlFindFp(const FilterBucket& b, u16 fp) {
  return enetstl::FindU16(b.fps, kFilterSlotsPerBucket, fp);  // kfunc
}

}  // namespace

bool CuckooFilterEnetstl::Add(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::HwHashCrc(&key, sizeof(key), config_.seed);
  return AddWithStash(buckets, h, EnetstlFindFp);
}

bool CuckooFilterEnetstl::Contains(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::HwHashCrc(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  if (EnetstlFindFp(buckets[b1], fp) >= 0) {
    return true;
  }
  if (EnetstlFindFp(buckets[AltBucket(b1, fp, bucket_mask_)], fp) >= 0) {
    return true;
  }
  return degraded() && StashContains(b1, fp);
}

bool CuckooFilterEnetstl::Remove(const ebpf::FiveTuple& key) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    return false;
  }
  const u32 h = enetstl::HwHashCrc(&key, sizeof(key), config_.seed);
  const u16 fp = MakeFp(h);
  const u32 b1 = h & bucket_mask_;
  for (u32 b : {b1, AltBucket(b1, fp, bucket_mask_)}) {
    const ebpf::s32 slot = EnetstlFindFp(buckets[b], fp);
    if (slot >= 0) {
      buckets[b].fps[slot] = 0;
      --size_;
      return true;
    }
  }
  if (degraded() && StashRemove(b1, fp)) {
    --size_;
    return true;
  }
  return false;
}

void CuckooFilterEnetstl::ContainsBatch(const ebpf::FiveTuple* keys, u32 n,
                                        bool* out) {
  auto* buckets = static_cast<FilterBucket*>(table_map_.LookupElem(0));
  if (buckets == nullptr) {
    for (u32 i = 0; i < n; ++i) {
      out[i] = false;
    }
    return;
  }
  ForEachNfChunk(n, [&](u32 start, u32 chunk) {
    u32 h[kMaxNfBurst];
    // Stage 1: one hash_prefetch_batch kfunc call for the whole burst.
    enetstl::HashPrefetchBatch(keys + start, sizeof(ebpf::FiveTuple),
                               sizeof(ebpf::FiveTuple), chunk, config_.seed,
                               buckets, static_cast<u32>(sizeof(FilterBucket)),
                               bucket_mask_, h);
    // Stage 2: find_simd kfunc probes.
    for (u32 i = 0; i < chunk; ++i) {
      const u16 fp = MakeFp(h[i]);
      const u32 b1 = h[i] & bucket_mask_;
      out[start + i] =
          EnetstlFindFp(buckets[b1], fp) >= 0 ||
          EnetstlFindFp(buckets[AltBucket(b1, fp, bucket_mask_)], fp) >= 0 ||
          (degraded() && StashContains(b1, fp));
    }
  });
}

namespace builtin {

void RegisterCuckooFilter(NfRegistry& registry) {
  NfEntry entry;
  entry.name = "cuckoo-filter";
  entry.category = "membership test";
  entry.variants = {Variant::kEbpf, Variant::kKernel, Variant::kEnetstl};
  entry.caps.batched = true;
  entry.factory = [](Variant v) -> std::unique_ptr<NetworkFunction> {
    CuckooFilterConfig config;
    config.num_buckets = 1024;
    switch (v) {
      case Variant::kEbpf:
        return std::make_unique<CuckooFilterEbpf>(config);
      case Variant::kKernel:
        return std::make_unique<CuckooFilterKernel>(config);
      case Variant::kEnetstl:
        return std::make_unique<CuckooFilterEnetstl>(config);
    }
    return nullptr;
  };
  entry.prime = [](const std::vector<NetworkFunction*>& nfs,
                   const BenchEnv& env) {
    for (u32 i = 0; i < 3500; ++i) {
      for (NetworkFunction* nf : nfs) {
        static_cast<CuckooFilterBase*>(nf)->Add(env.flows[i]);
      }
    }
    return env.uniform;
  };
  registry.Register(std::move(entry));
}

}  // namespace builtin

}  // namespace nf
