// Registration of every eNetSTL API as a kfunc with verifier metadata.
//
// Loading eNetSTL (the kernel module) registers its kfunc id set together
// with per-function annotations; the stock verifier then enforces correct
// usage from eBPF programs. RegisterEnetstlKfuncs() performs the equivalent
// registration into the simulated KfuncRegistry. Idempotent.
#ifndef ENETSTL_CORE_KFUNC_DEFS_H_
#define ENETSTL_CORE_KFUNC_DEFS_H_

#include "ebpf/verifier.h"

namespace enetstl {

// Registers all eNetSTL kfuncs into `registry` (the global one by default).
// Returns the number of kfuncs newly registered.
int RegisterEnetstlKfuncs(
    ebpf::KfuncRegistry& registry = ebpf::KfuncRegistry::Global());

}  // namespace enetstl

#endif  // ENETSTL_CORE_KFUNC_DEFS_H_
