// BPF map emulation: BPF_ARRAY, BPF_PERCPU_ARRAY, BPF_HASH, BPF_LRU_HASH.
//
// All map access methods are `noinline`, modeling the helper-call boundary
// (bpf_map_lookup_elem & friends) that every map operation in a real eBPF
// program pays. Simulated eBPF programs must use these maps for all state;
// kernel-native baselines use plain data structures instead.
//
// Maps are fixed-capacity (max_entries is declared up front, as in BPF) and
// never allocate on the datapath. The hash map is open-chained over a
// preallocated element pool with a freelist, matching the kernel's
// implementation of preallocated BPF hash maps.
#ifndef ENETSTL_EBPF_MAPS_H_
#define ENETSTL_EBPF_MAPS_H_

#include <array>
#include <cstring>
#include <vector>

#include "ebpf/helper.h"
#include "ebpf/spinlock.h"
#include "ebpf/types.h"

namespace ebpf {

namespace detail {

// Deterministically shuffles the initial freelist order. Kernel hash-map
// elements come from slab allocations scattered across memory; handing out
// pool slots in shuffled order reproduces that pointer-chase cache behaviour
// instead of the artificially perfect locality of a sequential freelist.
inline void ShuffleFreelist(std::vector<u32>& order) {
  u64 state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = order.size(); i > 1; --i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    std::swap(order[i - 1], order[state % i]);
  }
}

// 32-bit mixing used by map bucket selection (jhash-style finalizer). Kept
// deliberately scalar: map hashing inside the kernel is scalar too.
inline u32 HashBytes(const void* key, std::size_t len, u32 seed) {
  const auto* p = static_cast<const u8*>(key);
  u32 h = seed ^ static_cast<u32>(len);
  while (len >= 4) {
    u32 k;
    std::memcpy(&k, p, 4);
    k *= 0xcc9e2d51u;
    k = (k << 15) | (k >> 17);
    k *= 0x1b873593u;
    h ^= k;
    h = (h << 13) | (h >> 19);
    h = h * 5 + 0xe6546b64u;
    p += 4;
    len -= 4;
  }
  u32 tail = 0;
  std::memcpy(&tail, p, len);
  h ^= tail;
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace detail

// BPF_MAP_TYPE_ARRAY. Values are zero-initialized, as in the kernel.
template <typename V>
class ArrayMap {
 public:
  explicit ArrayMap(u32 max_entries) : values_(max_entries) {}

  ENETSTL_NOINLINE V* LookupElem(u32 index) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    if (index >= values_.size()) {
      return nullptr;
    }
    return &values_[index];
  }

  ENETSTL_NOINLINE int UpdateElem(u32 index, const V& value) {
    ++GlobalHelperStats().map_update_calls;
    CompilerBarrier();
    if (HelperFaultTriggered("helper.map_update")) {
      return kErrNoSpc;
    }
    if (index >= values_.size()) {
      return kErrInval;
    }
    values_[index] = value;
    return kOk;
  }

  u32 max_entries() const { return static_cast<u32>(values_.size()); }

 private:
  std::vector<V> values_;
};

// BPF_MAP_TYPE_ARRAY with a runtime-sized byte-blob value. Real eBPF NFs
// declare their whole working state (a full sketch, a filter, a table) as one
// map value so a single bpf_map_lookup_elem per packet yields a pointer to
// everything; this map models that pattern without templating on the size.
class RawArrayMap {
 public:
  RawArrayMap(u32 max_entries, u32 value_size)
      : max_entries_(max_entries),
        value_size_(value_size),
        storage_(static_cast<std::size_t>(max_entries) * value_size, 0) {}

  ENETSTL_NOINLINE void* LookupElem(u32 index) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    if (index >= max_entries_) {
      return nullptr;
    }
    return storage_.data() + static_cast<std::size_t>(index) * value_size_;
  }

  u32 max_entries() const { return max_entries_; }
  u32 value_size() const { return value_size_; }

 private:
  u32 max_entries_;
  u32 value_size_;
  std::vector<u8> storage_;
};

// Percpu variant of RawArrayMap.
class RawPercpuArrayMap {
 public:
  RawPercpuArrayMap(u32 max_entries, u32 value_size)
      : max_entries_(max_entries), value_size_(value_size) {
    for (auto& per_cpu : storage_) {
      per_cpu.assign(static_cast<std::size_t>(max_entries) * value_size, 0);
    }
  }

  ENETSTL_NOINLINE void* LookupElem(u32 index) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    if (index >= max_entries_) {
      return nullptr;
    }
    return storage_[CurrentCpu()].data() +
           static_cast<std::size_t>(index) * value_size_;
  }

  void* LookupElemOnCpu(u32 index, u32 cpu) {
    if (index >= max_entries_ || cpu >= kNumPossibleCpus) {
      return nullptr;
    }
    return storage_[cpu].data() + static_cast<std::size_t>(index) * value_size_;
  }

  u32 max_entries() const { return max_entries_; }
  u32 value_size() const { return value_size_; }

 private:
  u32 max_entries_;
  u32 value_size_;
  std::array<std::vector<u8>, kNumPossibleCpus> storage_;
};

// BPF_MAP_TYPE_PERCPU_ARRAY. Each possible CPU owns a private copy of every
// slot; LookupElem returns the current CPU's copy.
template <typename V>
class PercpuArrayMap {
 public:
  explicit PercpuArrayMap(u32 max_entries) : max_entries_(max_entries) {
    for (auto& per_cpu : values_) {
      per_cpu.resize(max_entries);
    }
  }

  ENETSTL_NOINLINE V* LookupElem(u32 index) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    if (index >= max_entries_) {
      return nullptr;
    }
    return &values_[CurrentCpu()][index];
  }

  // Harness-side accessor for aggregating percpu values (maps to the
  // user-space view of a percpu map); not a datapath helper.
  V* LookupElemOnCpu(u32 index, u32 cpu) {
    if (index >= max_entries_ || cpu >= kNumPossibleCpus) {
      return nullptr;
    }
    return &values_[cpu][index];
  }

  u32 max_entries() const { return max_entries_; }

 private:
  u32 max_entries_;
  std::array<std::vector<V>, kNumPossibleCpus> values_;
};

// BPF_MAP_TYPE_HASH with preallocated storage. Keys and values are flat
// (memcpy-able) types, as BPF requires. Per-bucket spinlocks mirror the
// kernel's htab bucket locks.
template <typename K, typename V>
class HashMap {
 public:
  explicit HashMap(u32 max_entries)
      : max_entries_(max_entries),
        bucket_count_(NextPow2(max_entries | 1)),
        buckets_(bucket_count_, kNil),
        bucket_locks_(bucket_count_),
        elems_(max_entries) {
    static_assert(std::is_trivially_copyable_v<K>);
    static_assert(std::is_trivially_copyable_v<V>);
    // Build the freelist in shuffled (slab-like) order.
    std::vector<u32> order(max_entries);
    for (u32 i = 0; i < max_entries; ++i) {
      order[i] = i;
    }
    detail::ShuffleFreelist(order);
    for (u32 i = 0; i < max_entries; ++i) {
      elems_[order[i]].next = (i + 1 < max_entries) ? order[i + 1] : kNil;
    }
    free_head_ = max_entries > 0 ? order[0] : kNil;
  }

  ENETSTL_NOINLINE V* LookupElem(const K& key) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    const u32 b = BucketOf(key);
    for (u32 idx = buckets_[b]; idx != kNil; idx = elems_[idx].next) {
      if (std::memcmp(&elems_[idx].key, &key, sizeof(K)) == 0) {
        return &elems_[idx].value;
      }
    }
    return nullptr;
  }

  ENETSTL_NOINLINE int UpdateElem(const K& key, const V& value) {
    ++GlobalHelperStats().map_update_calls;
    CompilerBarrier();
    if (HelperFaultTriggered("helper.map_update")) {
      return kErrNoSpc;
    }
    const u32 b = BucketOf(key);
    BpfSpinLockGuard guard(bucket_locks_[b]);
    for (u32 idx = buckets_[b]; idx != kNil; idx = elems_[idx].next) {
      if (std::memcmp(&elems_[idx].key, &key, sizeof(K)) == 0) {
        elems_[idx].value = value;
        return kOk;
      }
    }
    if (free_head_ == kNil) {
      return kErrNoSpc;
    }
    const u32 idx = free_head_;
    free_head_ = elems_[idx].next;
    elems_[idx].key = key;
    elems_[idx].value = value;
    elems_[idx].next = buckets_[b];
    buckets_[b] = idx;
    ++size_;
    return kOk;
  }

  ENETSTL_NOINLINE int DeleteElem(const K& key) {
    ++GlobalHelperStats().map_delete_calls;
    CompilerBarrier();
    const u32 b = BucketOf(key);
    BpfSpinLockGuard guard(bucket_locks_[b]);
    u32 prev = kNil;
    for (u32 idx = buckets_[b]; idx != kNil; prev = idx, idx = elems_[idx].next) {
      if (std::memcmp(&elems_[idx].key, &key, sizeof(K)) == 0) {
        if (prev == kNil) {
          buckets_[b] = elems_[idx].next;
        } else {
          elems_[prev].next = elems_[idx].next;
        }
        elems_[idx].next = free_head_;
        free_head_ = idx;
        --size_;
        return kOk;
      }
    }
    return kErrNoEnt;
  }

  u32 size() const { return size_; }
  u32 max_entries() const { return max_entries_; }

 private:
  static constexpr u32 kNil = 0xffffffffu;

  struct Elem {
    K key;
    V value;
    u32 next = kNil;
  };

  static u32 NextPow2(u32 v) {
    u32 p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  u32 BucketOf(const K& key) const {
    return detail::HashBytes(&key, sizeof(K), 0x9e3779b9u) & (bucket_count_ - 1);
  }

  u32 max_entries_;
  u32 bucket_count_;
  u32 size_ = 0;
  u32 free_head_ = kNil;
  std::vector<u32> buckets_;
  mutable std::vector<BpfSpinLock> bucket_locks_;
  std::vector<Elem> elems_;
};

// BPF_MAP_TYPE_LRU_HASH: hash map that evicts the least recently used entry
// when full instead of failing the update. Recency is tracked with an
// intrusive doubly-linked use list, as the kernel does (approximately).
template <typename K, typename V>
class LruHashMap {
 public:
  explicit LruHashMap(u32 max_entries)
      : max_entries_(max_entries),
        bucket_count_(NextPow2(max_entries | 1)),
        buckets_(bucket_count_, kNil),
        elems_(max_entries) {
    std::vector<u32> order(max_entries);
    for (u32 i = 0; i < max_entries; ++i) {
      order[i] = i;
    }
    detail::ShuffleFreelist(order);
    for (u32 i = 0; i < max_entries; ++i) {
      elems_[order[i]].next = (i + 1 < max_entries) ? order[i + 1] : kNil;
    }
    free_head_ = max_entries > 0 ? order[0] : kNil;
  }

  ENETSTL_NOINLINE V* LookupElem(const K& key) {
    ++GlobalHelperStats().map_lookup_calls;
    CompilerBarrier();
    const u32 idx = Find(key);
    if (idx == kNil) {
      return nullptr;
    }
    Touch(idx);
    return &elems_[idx].value;
  }

  ENETSTL_NOINLINE int UpdateElem(const K& key, const V& value) {
    ++GlobalHelperStats().map_update_calls;
    CompilerBarrier();
    if (HelperFaultTriggered("helper.map_update")) {
      return kErrNoSpc;
    }
    u32 idx = Find(key);
    if (idx != kNil) {
      elems_[idx].value = value;
      Touch(idx);
      return kOk;
    }
    if (free_head_ == kNil) {
      EvictOldest();
    }
    if (free_head_ == kNil) {
      return kErrNoSpc;
    }
    idx = free_head_;
    free_head_ = elems_[idx].next;
    elems_[idx].key = key;
    elems_[idx].value = value;
    const u32 b = BucketOf(key);
    elems_[idx].next = buckets_[b];
    buckets_[b] = idx;
    LruPushFront(idx);
    ++size_;
    return kOk;
  }

  ENETSTL_NOINLINE int DeleteElem(const K& key) {
    ++GlobalHelperStats().map_delete_calls;
    CompilerBarrier();
    const u32 idx = Find(key);
    if (idx == kNil) {
      return kErrNoEnt;
    }
    Remove(idx);
    return kOk;
  }

  u32 size() const { return size_; }
  u32 max_entries() const { return max_entries_; }

  // Control-plane snapshot walk (state transfer, not a datapath helper —
  // real LRU maps are walked with bpf_map_get_next_key from user space).
  // Visits every live entry oldest-first, so replaying the walk through
  // UpdateElem on a fresh map reproduces the recency order: the last entry
  // visited (most recent here) is the most recent there too, and future
  // evictions pick the same victims. Does not touch recency itself.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (u32 idx = lru_tail_; idx != kNil; idx = elems_[idx].lru_prev) {
      fn(elems_[idx].key, elems_[idx].value);
    }
  }

 private:
  static constexpr u32 kNil = 0xffffffffu;

  struct Elem {
    K key;
    V value;
    u32 next = kNil;      // hash chain
    u32 lru_prev = kNil;  // recency list
    u32 lru_next = kNil;
  };

  static u32 NextPow2(u32 v) {
    u32 p = 1;
    while (p < v) {
      p <<= 1;
    }
    return p;
  }

  u32 BucketOf(const K& key) const {
    return detail::HashBytes(&key, sizeof(K), 0x85ebca6bu) & (bucket_count_ - 1);
  }

  u32 Find(const K& key) const {
    const u32 b = BucketOf(key);
    for (u32 idx = buckets_[b]; idx != kNil; idx = elems_[idx].next) {
      if (std::memcmp(&elems_[idx].key, &key, sizeof(K)) == 0) {
        return idx;
      }
    }
    return kNil;
  }

  void LruPushFront(u32 idx) {
    elems_[idx].lru_prev = kNil;
    elems_[idx].lru_next = lru_head_;
    if (lru_head_ != kNil) {
      elems_[lru_head_].lru_prev = idx;
    }
    lru_head_ = idx;
    if (lru_tail_ == kNil) {
      lru_tail_ = idx;
    }
  }

  void LruUnlink(u32 idx) {
    const u32 p = elems_[idx].lru_prev;
    const u32 n = elems_[idx].lru_next;
    if (p != kNil) {
      elems_[p].lru_next = n;
    } else {
      lru_head_ = n;
    }
    if (n != kNil) {
      elems_[n].lru_prev = p;
    } else {
      lru_tail_ = p;
    }
  }

  void Touch(u32 idx) {
    if (lru_head_ == idx) {
      return;
    }
    LruUnlink(idx);
    LruPushFront(idx);
  }

  void Remove(u32 idx) {
    const u32 b = BucketOf(elems_[idx].key);
    u32 prev = kNil;
    for (u32 cur = buckets_[b]; cur != kNil; prev = cur, cur = elems_[cur].next) {
      if (cur == idx) {
        if (prev == kNil) {
          buckets_[b] = elems_[cur].next;
        } else {
          elems_[prev].next = elems_[cur].next;
        }
        break;
      }
    }
    LruUnlink(idx);
    elems_[idx].next = free_head_;
    free_head_ = idx;
    --size_;
  }

  void EvictOldest() {
    if (lru_tail_ != kNil) {
      Remove(lru_tail_);
    }
  }

  u32 max_entries_;
  u32 bucket_count_;
  u32 size_ = 0;
  u32 free_head_ = kNil;
  u32 lru_head_ = kNil;
  u32 lru_tail_ = kNil;
  std::vector<u32> buckets_;
  std::vector<Elem> elems_;
};

}  // namespace ebpf

#endif  // ENETSTL_EBPF_MAPS_H_
