// Tests for the traffic substrate: generator determinism, Zipf skew,
// operation mixes, and the measurement pipeline's accounting.
#include "pktgen/flowgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "pktgen/pipeline.h"

namespace pktgen {
namespace {

TEST(Rng, DeterministicAndSeedSensitive) {
  Rng a(1), b(1), c(2);
  for (int i = 0; i < 100; ++i) {
    const u64 va = a.NextU64();
    ASSERT_EQ(va, b.NextU64());
  }
  int same = 0;
  Rng a2(1);
  for (int i = 0; i < 100; ++i) {
    if (a2.NextU64() == c.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(FlowPopulation, DistinctAndDeterministic) {
  const auto flows_a = MakeFlowPopulation(1000, 9);
  const auto flows_b = MakeFlowPopulation(1000, 9);
  ASSERT_EQ(flows_a.size(), 1000u);
  EXPECT_TRUE(std::equal(flows_a.begin(), flows_a.end(), flows_b.begin()));
  std::set<u32> src_ips;
  for (const auto& f : flows_a) {
    src_ips.insert(f.src_ip);
  }
  EXPECT_EQ(src_ips.size(), 1000u);  // unique per flow
}

TEST(UniformTrace, CoversFlows) {
  const auto flows = MakeFlowPopulation(16, 1);
  const auto trace = MakeUniformTrace(flows, 4096, 2);
  ASSERT_EQ(trace.size(), 4096u);
  std::map<u32, u32> counts;
  for (const auto& p : trace) {
    ebpf::XdpContext ctx{const_cast<u8*>(p.frame),
                         const_cast<u8*>(p.frame) + ebpf::kFrameSize, 0};
    ebpf::FiveTuple t;
    ASSERT_TRUE(ebpf::ParseFiveTuple(ctx, &t));
    ++counts[t.src_ip];
  }
  EXPECT_EQ(counts.size(), 16u);
  for (const auto& [ip, c] : counts) {
    EXPECT_GT(c, 128u);  // expected 256 each
    EXPECT_LT(c, 512u);
  }
}

TEST(ZipfTrace, SkewsTowardLowRanks) {
  const auto flows = MakeFlowPopulation(1000, 4);
  const auto trace = MakeZipfTrace(flows, 20000, 1.2, 5);
  std::map<u32, u32> counts;
  for (const auto& p : trace) {
    ebpf::XdpContext ctx{const_cast<u8*>(p.frame),
                         const_cast<u8*>(p.frame) + ebpf::kFrameSize, 0};
    ebpf::FiveTuple t;
    ebpf::ParseFiveTuple(ctx, &t);
    ++counts[t.src_ip];
  }
  // Rank-0 flow (src ip of flows[0]) must dominate: > 5% of traffic.
  EXPECT_GT(counts[flows[0].src_ip], 1000u);
  // Zipf must produce far fewer distinct flows at the head than uniform.
  u32 heavy = 0;
  for (const auto& [ip, c] : counts) {
    if (c > 200) {
      ++heavy;
    }
  }
  EXPECT_LT(heavy, 30u);
}

TEST(ZipfTrace, AlphaZeroIsUniformish) {
  const auto flows = MakeFlowPopulation(100, 4);
  const auto trace = MakeZipfTrace(flows, 10000, 0.0, 5);
  std::map<u32, u32> counts;
  for (const auto& p : trace) {
    ebpf::XdpContext ctx{const_cast<u8*>(p.frame),
                         const_cast<u8*>(p.frame) + ebpf::kFrameSize, 0};
    ebpf::FiveTuple t;
    ebpf::ParseFiveTuple(ctx, &t);
    ++counts[t.src_ip];
  }
  for (const auto& [ip, c] : counts) {
    EXPECT_GT(c, 40u);
    EXPECT_LT(c, 200u);
  }
}

TEST(OpMixTrace, RespectsWeights) {
  const auto flows = MakeFlowPopulation(10, 1);
  const auto trace = MakeOpMixTrace(flows, 10000, 0.5, 0.25, 0.25, 7);
  u32 counts[3] = {0, 0, 0};
  for (const auto& p : trace) {
    const u32 op = p.PayloadWord(0);
    ASSERT_LT(op, 3u);
    ++counts[op];
  }
  EXPECT_NEAR(counts[0], 5000u, 400);
  EXPECT_NEAR(counts[1], 2500u, 300);
  EXPECT_NEAR(counts[2], 2500u, 300);
}

TEST(QueueingTrace, AlternatesOpsWithinHorizon) {
  const auto flows = MakeFlowPopulation(10, 1);
  const auto trace = MakeQueueingTrace(flows, 100, 512, 3);
  for (u32 i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace[i].PayloadWord(0), i & 1u);
    EXPECT_LT(trace[i].PayloadWord(1), 512u);
  }
}

TEST(Pipeline, ThroughputCountsVerdicts) {
  Pipeline::Options opts;
  opts.warmup_packets = 10;
  opts.measure_packets = 1000;
  Pipeline pipeline(opts);
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 64, 2);
  u64 seen = 0;
  auto handler = [&seen](ebpf::XdpContext& ctx) {
    ++seen;
    return (seen % 2 == 0) ? ebpf::XdpAction::kDrop : ebpf::XdpAction::kPass;
  };
  const ThroughputStats stats = pipeline.MeasureThroughput(handler, trace);
  EXPECT_EQ(stats.packets, 1000u);
  EXPECT_EQ(stats.dropped + stats.passed + stats.aborted, 1000u);
  EXPECT_EQ(seen, 1010u);  // warmup + measured
  EXPECT_GT(stats.pps, 0.0);
  EXPECT_GT(stats.ns_per_packet, 0.0);
}

TEST(Pipeline, EmptyTraceYieldsZeroStats) {
  Pipeline pipeline;
  const ThroughputStats stats =
      pipeline.MeasureThroughput([](ebpf::XdpContext&) {
        return ebpf::XdpAction::kPass;
      }, Trace{});
  EXPECT_EQ(stats.packets, 0u);
}

TEST(Pipeline, BurstCountsVerdictsWithTruncatedFinalBurst) {
  Pipeline::Options opts;
  opts.warmup_packets = 10;
  opts.measure_packets = 1000;  // not a multiple of 32
  opts.burst_size = 32;
  Pipeline pipeline(opts);
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 64, 2);
  u64 seen = 0;
  u32 max_count = 0;
  auto handler = [&](ebpf::XdpContext* ctxs, u32 count,
                     ebpf::XdpAction* verdicts) {
    max_count = count > max_count ? count : max_count;
    for (u32 i = 0; i < count; ++i) {
      ++seen;
      verdicts[i] = (seen % 3 == 0)   ? ebpf::XdpAction::kDrop
                    : (seen % 3 == 1) ? ebpf::XdpAction::kPass
                                      : ebpf::XdpAction::kAborted;
    }
  };
  const ThroughputStats stats = pipeline.MeasureThroughputBurst(handler, trace);
  EXPECT_EQ(stats.packets, 1000u);
  EXPECT_EQ(stats.dropped + stats.passed + stats.aborted, 1000u);
  // seen % 3: 1010 calls total (warmup included), measured window counts
  // only the last 1000 — but the three verdict classes must each be ~1/3.
  EXPECT_NEAR(static_cast<double>(stats.dropped), 333.0, 2.0);
  EXPECT_NEAR(static_cast<double>(stats.passed), 333.0, 2.0);
  EXPECT_NEAR(static_cast<double>(stats.aborted), 333.0, 2.0);
  EXPECT_EQ(seen, 1010u);         // warmup + measured, exactly
  EXPECT_EQ(max_count, 32u);      // full bursts are exactly burst_size
  EXPECT_GT(stats.pps, 0.0);
}

TEST(Pipeline, BurstSizeIsClampedToValidRange) {
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 64, 2);
  auto run_with_burst = [&](u32 burst) {
    Pipeline::Options opts;
    opts.warmup_packets = 0;
    opts.measure_packets = 500;
    opts.burst_size = burst;
    u32 max_count = 0;
    Pipeline(opts).MeasureThroughputBurst(
        [&](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
          max_count = count > max_count ? count : max_count;
          for (u32 i = 0; i < count; ++i) {
            verdicts[i] = ebpf::XdpAction::kPass;
          }
        },
        trace);
    return max_count;
  };
  EXPECT_EQ(run_with_burst(0), 1u);               // clamped up to 1
  EXPECT_EQ(run_with_burst(1'000'000), kMaxBurstSize);  // clamped down
}

// Explicit remainder-tail contract: when measure_packets is not a multiple
// of the burst width, every burst but the last is exactly burst_size, the
// last is exactly the remainder, and the handler is never invoked with a
// zero count.
TEST(Pipeline, BurstRemainderTailIsExact) {
  Pipeline::Options opts;
  opts.warmup_packets = 0;
  opts.measure_packets = 70;  // 2 full bursts of 32 + a 6-packet tail
  opts.burst_size = 32;
  Pipeline pipeline(opts);
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 64, 2);
  std::vector<u32> counts;
  const ThroughputStats stats = pipeline.MeasureThroughputBurst(
      [&](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
        counts.push_back(count);
        for (u32 i = 0; i < count; ++i) {
          verdicts[i] = ebpf::XdpAction::kPass;
        }
      },
      trace);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 32u);
  EXPECT_EQ(counts[1], 32u);
  EXPECT_EQ(counts[2], 6u);  // remainder tail, not a padded burst
  for (u32 c : counts) {
    EXPECT_GT(c, 0u);
  }
  EXPECT_EQ(stats.packets, 70u);
  EXPECT_EQ(stats.passed, 70u);
}

TEST(Pipeline, BurstEmptyTraceYieldsZeroStats) {
  const ThroughputStats stats = Pipeline().MeasureThroughputBurst(
      [](ebpf::XdpContext*, u32 count, ebpf::XdpAction* verdicts) {
        for (u32 i = 0; i < count; ++i) {
          verdicts[i] = ebpf::XdpAction::kPass;
        }
      },
      Trace{});
  EXPECT_EQ(stats.packets, 0u);
  EXPECT_EQ(stats.dropped + stats.passed + stats.aborted, 0u);
}

TEST(Pipeline, LatencyPercentilesOrdered) {
  Pipeline pipeline;
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 16, 2);
  const LatencyStats stats = pipeline.MeasureLatency(
      [](ebpf::XdpContext&) { return ebpf::XdpAction::kPass; }, trace, 2000);
  EXPECT_EQ(stats.packets, 2000u);
  EXPECT_GT(stats.p50_ns, 0.0);
  EXPECT_LE(stats.p50_ns, stats.p90_ns);
  EXPECT_LE(stats.p90_ns, stats.p99_ns);
  EXPECT_LE(stats.p99_ns, stats.max_ns);
  EXPECT_GT(stats.mean_ns, 0.0);
}

TEST(Pipeline, ReplayOnceTouchesEveryPacket) {
  const auto flows = MakeFlowPopulation(4, 1);
  const auto trace = MakeUniformTrace(flows, 100, 2);
  u64 n = 0;
  ReplayOnce([&n](ebpf::XdpContext&) {
    ++n;
    return ebpf::XdpAction::kPass;
  }, trace);
  EXPECT_EQ(n, 100u);
}

TEST(Packet, PayloadWordsRoundTrip) {
  Packet p = Packet::FromTuple(ebpf::FiveTuple{});
  p.SetPayloadWord(0, 0xdeadbeef);
  p.SetPayloadWord(1, 42);
  EXPECT_EQ(p.PayloadWord(0), 0xdeadbeefu);
  EXPECT_EQ(p.PayloadWord(1), 42u);
}

TEST(SynFloodTrace, UniqueSpoofedSourcesAimedAtVictim) {
  ebpf::FiveTuple victim;
  victim.dst_ip = 0xc0a80001u;
  victim.dst_port = 443;
  const auto trace = MakeSynFloodTrace(victim, 10'000, 77);
  ASSERT_EQ(trace.size(), 10'000u);
  std::set<u32> sources;
  for (const Packet& p : trace) {
    ebpf::XdpContext ctx{const_cast<u8*>(p.frame),
                         const_cast<u8*>(p.frame) + ebpf::kFrameSize, 0};
    ebpf::FiveTuple t;
    ASSERT_TRUE(ebpf::ParseFiveTuple(ctx, &t));
    EXPECT_EQ(t.dst_ip, victim.dst_ip);
    EXPECT_EQ(t.dst_port, victim.dst_port);
    EXPECT_EQ(t.protocol, 6);  // TCP
    sources.insert(t.src_ip);
    // The SYN flag must be set in the TCP flags byte — that is what makes
    // conntrack open a fresh flow per packet.
    EXPECT_EQ(p.frame[ebpf::kL4HeaderOffset + 13] & 0x02, 0x02);
  }
  // fmix32 is a bijection on packet index: every spoofed source is unique.
  EXPECT_EQ(sources.size(), trace.size());
}

TEST(SynFloodTrace, DeterministicPerSeedAndSeedSensitive) {
  ebpf::FiveTuple victim;
  victim.dst_ip = 0x01020304u;
  victim.dst_port = 80;
  const auto a = MakeSynFloodTrace(victim, 256, 1);
  const auto b = MakeSynFloodTrace(victim, 256, 1);
  const auto c = MakeSynFloodTrace(victim, 256, 2);
  ASSERT_EQ(a.size(), b.size());
  bool all_equal = true;
  bool any_differs_from_c = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    all_equal = all_equal &&
                std::equal(a[i].frame, a[i].frame + ebpf::kFrameSize,
                           b[i].frame);
    any_differs_from_c =
        any_differs_from_c ||
        !std::equal(a[i].frame, a[i].frame + ebpf::kFrameSize, c[i].frame);
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_differs_from_c);
}

}  // namespace
}  // namespace pktgen
