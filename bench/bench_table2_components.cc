// Table 2: per-component microbenchmarks — every eNetSTL wrapper, algorithm
// and data structure against the pure-eBPF implementation of the same
// operation (paper: individual components improve by 52%-513%). Uses
// google-benchmark; compare the "_enetstl" and "_ebpf" rows pairwise.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <vector>

#include "core/bits.h"
#include "core/bits_kfunc.h"
#include "core/compare.h"
#include "core/hash.h"
#include "core/list_buckets.h"
#include "core/memory_wrapper.h"
#include "core/post_hash.h"
#include "core/random_pool.h"
#include "ebpf/helper.h"
#include "ebpf/linklist.h"
#include "ebpf/maps.h"
#include "pktgen/flowgen.h"

namespace {

using ebpf::u16;
using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

// --- Algorithm: bit manipulation (ffs) --------------------------------------

// Words with the first set bit uniform over [0, 64), as bitmap occupancy
// produces. The eBPF baseline is the loop emulation published eBPF ports
// use; SoftFfs64 (the de Bruijn table emulation) is benchmarked separately.
void BM_Ffs_ebpf(benchmark::State& state) {
  pktgen::Rng rng(1);
  std::vector<u64> words(1024);
  for (auto& w : words) {
    w = ~0ull << rng.NextBounded(64);
  }
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enetstl::SoftFfsLoop64(words[i++ & 1023]));
  }
}
BENCHMARK(BM_Ffs_ebpf);

void BM_Ffs_ebpf_debruijn(benchmark::State& state) {
  pktgen::Rng rng(1);
  std::vector<u64> words(1024);
  for (auto& w : words) {
    w = ~0ull << rng.NextBounded(64);
  }
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enetstl::SoftFfs64(words[i++ & 1023]));
  }
}
BENCHMARK(BM_Ffs_ebpf_debruijn);

void BM_Ffs_enetstl(benchmark::State& state) {
  pktgen::Rng rng(1);
  std::vector<u64> words(1024);
  for (auto& w : words) {
    w = ~0ull << rng.NextBounded(64);
  }
  u64 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enetstl::kfunc::Ffs64(words[i++ & 1023]));
  }
}
BENCHMARK(BM_Ffs_enetstl);

// --- Algorithm: single hash (hw_hash_crc vs software hash) ------------------

void BM_Hash16B_ebpf(benchmark::State& state) {
  u8 key[16] = {1, 2, 3};
  u32 i = 0;
  for (auto _ : state) {
    key[0] = static_cast<u8>(++i);
    benchmark::DoNotOptimize(enetstl::XxHash32Bpf(key, sizeof(key), 7));
  }
}
BENCHMARK(BM_Hash16B_ebpf);

void BM_Hash16B_enetstl(benchmark::State& state) {
  u8 key[16] = {1, 2, 3};
  u32 i = 0;
  for (auto _ : state) {
    key[0] = static_cast<u8>(++i);
    benchmark::DoNotOptimize(enetstl::HwHashCrc(key, sizeof(key), 7));
  }
}
BENCHMARK(BM_Hash16B_enetstl);

// --- Algorithm: fused multi-hash counting (hash_simd_cnt) -------------------

void BM_HashCnt8_ebpf(benchmark::State& state) {
  std::vector<u32> counters(8 * 4096, 0);
  u8 key[16] = {};
  u32 i = 0;
  for (auto _ : state) {
    ++i;
    std::memcpy(key, &i, 4);
    for (u32 r = 0; r < 8; ++r) {
      const u32 h =
          enetstl::XxHash32Bpf(key, sizeof(key), enetstl::LaneSeed(7, r));
      ++counters[r * 4096 + (h & 4095)];
    }
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HashCnt8_ebpf);

void BM_HashCnt8_enetstl(benchmark::State& state) {
  std::vector<u32> counters(8 * 4096, 0);
  u8 key[16] = {};
  u32 i = 0;
  for (auto _ : state) {
    ++i;
    std::memcpy(key, &i, 4);
    enetstl::HashCnt(counters.data(), 8, 4095, key, sizeof(key), 7, 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HashCnt8_enetstl);

// --- Algorithm: parallel compare (find_simd) --------------------------------

void BM_Find32_ebpf(benchmark::State& state) {
  std::vector<u32> arr(32);
  for (u32 j = 0; j < 32; ++j) {
    arr[j] = j * 7 + 1;
  }
  u32 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enetstl::scalar::FindU32(arr.data(), 32, (++i & 31) * 7 + 1));
  }
}
BENCHMARK(BM_Find32_ebpf);

void BM_Find32_enetstl(benchmark::State& state) {
  std::vector<u32> arr(32);
  for (u32 j = 0; j < 32; ++j) {
    arr[j] = j * 7 + 1;
  }
  u32 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enetstl::FindU32(arr.data(), 32, (++i & 31) * 7 + 1));
  }
}
BENCHMARK(BM_Find32_enetstl);

// --- Algorithm: parallel reduce (min over 32 counters) ----------------------

void BM_Min32_ebpf(benchmark::State& state) {
  pktgen::Rng rng(3);
  std::vector<u32> arr(32);
  for (auto& v : arr) {
    v = rng.NextU32();
  }
  u32 min_val = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        enetstl::scalar::MinIndexU32(arr.data(), 32, &min_val));
  }
}
BENCHMARK(BM_Min32_ebpf);

void BM_Min32_enetstl(benchmark::State& state) {
  pktgen::Rng rng(3);
  std::vector<u32> arr(32);
  for (auto& v : arr) {
    v = rng.NextU32();
  }
  u32 min_val = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(enetstl::MinIndexU32(arr.data(), 32, &min_val));
  }
}
BENCHMARK(BM_Min32_enetstl);

// --- Algorithm: comparing after hashing (hash_cmp, d-ary cuckoo probe) ------
// d = 8: with few rows, out-of-order execution across independent scalar
// hashes rivals the narrow vector (see bench_ext_structures' hit-heavy row);
// the fused kfunc is the right tool at the row counts sketch/d-ary NFs use.

void BM_HashCmp8_ebpf(benchmark::State& state) {
  std::vector<u32> table(8192, 0);
  pktgen::Rng rng(9);
  for (auto& v : table) {
    v = static_cast<u32>(rng.NextBounded(3)) ? rng.NextU32() | 1 : 0;
  }
  u8 key[16] = {};
  u32 i = 0;
  for (auto _ : state) {
    ++i;
    std::memcpy(key, &i, 4);
    const u32 sig = i * 2654435761u | 1;
    ebpf::s32 row = -1;
    for (u32 r = 0; r < 8; ++r) {
      const u32 h =
          enetstl::XxHash32Bpf(key, sizeof(key), enetstl::LaneSeed(7, r));
      if (table[h & 8191] == sig) {
        row = static_cast<ebpf::s32>(r);
        break;
      }
    }
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_HashCmp8_ebpf);

void BM_HashCmp8_enetstl(benchmark::State& state) {
  std::vector<u32> table(8192, 0);
  pktgen::Rng rng(9);
  for (auto& v : table) {
    v = static_cast<u32>(rng.NextBounded(3)) ? rng.NextU32() | 1 : 0;
  }
  u8 key[16] = {};
  u32 i = 0;
  for (auto _ : state) {
    ++i;
    std::memcpy(key, &i, 4);
    const u32 sig = i * 2654435761u | 1;
    u32 pos = 0;
    ebpf::s32 empty = -1;
    benchmark::DoNotOptimize(enetstl::HashCmp(table.data(), 8191, key,
                                              sizeof(key), 7, 8, sig, &pos,
                                              &empty));
  }
}
BENCHMARK(BM_HashCmp8_enetstl);

// --- Data structure: list-buckets vs map-of-BPF-lists -----------------------

void BM_BucketQueue_ebpf(benchmark::State& state) {
  // One map element + one lock per bucket list, as real eBPF NFs must.
  constexpr u32 kBuckets = 256;
  ebpf::ArrayMap<ebpf::BpfList<u64>> bucket_map(kBuckets);
  std::vector<ebpf::BpfSpinLock> locks(kBuckets);
  ebpf::BpfObjPool<u64> pool(1024);
  u32 i = 0;
  for (auto _ : state) {
    const u32 bucket = ++i & (kBuckets - 1);
    ebpf::BpfList<u64>* list = bucket_map.LookupElem(bucket);
    list->PushBack(pool, locks[bucket], i);
    u64 out;
    list->PopFront(pool, locks[bucket], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BucketQueue_ebpf);

void BM_BucketQueue_enetstl(benchmark::State& state) {
  constexpr u32 kBuckets = 256;
  ebpf::SetCurrentCpu(0);
  enetstl::ListBuckets buckets(kBuckets, 1024, sizeof(u64));
  u32 i = 0;
  for (auto _ : state) {
    const u32 bucket = ++i & (kBuckets - 1);
    u64 v = i;
    buckets.InsertTail(bucket, &v, sizeof(v));
    u64 out;
    buckets.PopFront(bucket, &out, sizeof(out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_BucketQueue_enetstl);

// --- Data structure: random pool vs helper PRNG -----------------------------

void BM_Random_ebpf(benchmark::State& state) {
  ebpf::helpers::SeedPrandom(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ebpf::helpers::BpfGetPrandomU32());
  }
}
BENCHMARK(BM_Random_ebpf);

void BM_Random_enetstl(benchmark::State& state) {
  enetstl::RandomPool pool(4096, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Next());
  }
}
BENCHMARK(BM_Random_enetstl);

// Geometric sampling: per-row coin flips vs one pooled geometric sample.
void BM_GeoSample_ebpf(benchmark::State& state) {
  ebpf::helpers::SeedPrandom(1);
  constexpr u32 kThreshold = 0x20000000u;  // p = 1/8
  for (auto _ : state) {
    // eBPF draws per-row coins until one hits (expected 8 helper calls).
    u32 steps = 1;
    while (ebpf::helpers::BpfGetPrandomU32() >= kThreshold) {
      ++steps;
      if (steps > 64) {
        break;
      }
    }
    benchmark::DoNotOptimize(steps);
  }
}
BENCHMARK(BM_GeoSample_ebpf);

void BM_GeoSample_enetstl(benchmark::State& state) {
  enetstl::GeoRandomPool pool(4096, 0.125, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.NextGeo());
  }
}
BENCHMARK(BM_GeoSample_enetstl);

// --- Memory wrapper: traversal cost (the component eBPF cannot express) -----

void BM_MemWrapper_get_next_chain(benchmark::State& state) {
  enetstl::NodeProxy proxy;
  enetstl::Node* head = proxy.NodeAlloc(1, 1, 16);
  proxy.SetOwner(head);
  enetstl::Node* prev = head;
  for (int i = 0; i < 64; ++i) {
    enetstl::Node* n = proxy.NodeAlloc(1, 1, 16);
    proxy.SetOwner(n);
    proxy.NodeConnect(prev, 0, n, 0);
    proxy.NodeRelease(n);
    prev = n;
  }
  for (auto _ : state) {
    enetstl::Node* x = head;
    enetstl::Node* ref = nullptr;
    int count = 0;
    while (enetstl::Node* next = proxy.GetNext(x, 0)) {
      if (ref != nullptr) {
        proxy.NodeRelease(ref);
      }
      x = next;
      ref = next;
      ++count;
    }
    if (ref != nullptr) {
      proxy.NodeRelease(ref);
    }
    benchmark::DoNotOptimize(count);
  }
  proxy.NodeRelease(head);
}
BENCHMARK(BM_MemWrapper_get_next_chain);

}  // namespace

// Registry-aware main: --list / --nf= are handled before google-benchmark
// sees the arguments (HandleRegistryArgs strips what it consumes).
int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
