// Miniature Katran-style L4 load balancer (Figure 7 integration case).
//
// Pipeline per packet: parse 5-tuple -> connection-table lookup (affinity) ->
// on miss, pick a backend from the VIP's consistent-hash ring and record the
// connection -> forward.
//
// Origin core: BPF-LRU-model flow table + scalar software hash over the ring
// (what Katran's eBPF datapath uses). eNetSTL core: the arena-backed paired
// FlowTable with batched prefetched lookups + hardware-CRC ring hash — the
// component swap the paper performs. Both tables are the shared nf/conntrack
// engines (the app used to own a private LRU map / cuckoo table); pairing
// means return-direction traffic of a recorded connection hits the same
// backend for free.
#ifndef ENETSTL_APPS_KATRAN_LB_H_
#define ENETSTL_APPS_KATRAN_LB_H_

#include <memory>
#include <vector>

#include "nf/conntrack.h"
#include "nf/nf_interface.h"

namespace apps {

using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

enum class CoreKind {
  kOrigin,   // BPF-map based components
  kEnetstl,  // eNetSTL based components
};

struct KatranConfig {
  u32 ring_size = 4099;        // consistent-hash ring entries (prime, Maglev)
  u32 num_backends = 16;
  u32 conn_table_size = 16384; // connections tracked
  u32 seed = 0x8f1bbcdcu;
  // Explicit backend-id set for the Maglev ring; empty means the identity
  // set {0 .. num_backends-1}. A backend-set change is a live
  // reconfiguration: build a new KatranLb with the new set and hot-swap it
  // in (apps::SwapLbBackends) — recorded connections keep their old backend
  // through state transfer, exactly Katran's connection-affinity contract.
  std::vector<u32> backends;
};

// Builds a Maglev consistent-hash ring (Eisenbud et al., NSDI '16 — the
// algorithm Katran uses): each backend fills the ring through its own
// (offset, skip) permutation, giving near-perfect balance and minimal
// disruption when the backend set changes. ring_size must be prime.
std::vector<u32> BuildMaglevRing(const std::vector<u32>& backends,
                                 u32 ring_size, u32 seed);

class KatranLb : public nf::NetworkFunction {
 public:
  KatranLb(CoreKind core, const KatranConfig& config);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  // Burst path. The eNetSTL core batches the connection-table lookup (one
  // two-stage prefetched probe over the whole burst); misses then go through
  // the scalar ring-hash + insert path in arrival order, so the backend
  // decisions are identical to per-packet processing. The origin core has no
  // batched map primitive and falls back to the scalar loop.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) override;

  // Backend chosen for the given connection (records it, as Process does).
  u32 PickBackend(const ebpf::FiveTuple& tuple);

  std::string_view name() const override { return "katran-lb"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

  u64 hits() const { return hits_; }
  u64 misses() const { return misses_; }
  CoreKind core() const { return core_; }
  const KatranConfig& config() const { return config_; }

  // Connection-table state transfer for live hot swap. The blob format is
  // owned by the NF family, not the core: u32 entry count, then per entry
  // the flat 16-byte 5-tuple and the u32 backend id — so an origin-core
  // table exports into an eNetSTL-core replacement and vice versa (the
  // component-swap axis of the paper's Figure 7 case). Export order is
  // LRU-oldest-first on the origin core, so an import through the LRU map
  // reproduces eviction order for live connections.
  bool ExportState(std::vector<ebpf::u8>& out) const override;
  bool ImportState(const ebpf::u8* data, std::size_t len) override;

 private:
  CoreKind core_;
  KatranConfig config_;
  std::vector<u32> ring_;  // ring slot -> backend id

  // Origin connection table: the conntrack family's BPF-LRU-map engine.
  std::unique_ptr<nf::LruFlowTable> lru_conn_;
  // eNetSTL connection table: the arena-backed paired flow table.
  std::unique_ptr<nf::FlowTable> conn_;

  // Telemetry scope "app/katran-lb" (obs::kInvalidScope when compiled out).
  ebpf::u16 obs_scope_ = 0xffff;

  u64 hits_ = 0;
  u64 misses_ = 0;
};

}  // namespace apps

#endif  // ENETSTL_APPS_KATRAN_LB_H_
