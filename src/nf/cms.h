// Count-min sketch (Cormode & Muthukrishnan) — the paper's Case Study 2.
//
// The sketch is a rows x cols matrix of u32 counters; an update increments
// one counter per row at column h_r(key) & (cols - 1); a query returns the
// minimum of the addressed counters.
//
// Variants:
//  * CmsEbpf    — sketch in a percpu BPF array map (one lookup per packet to
//                 obtain the blob pointer, as real eBPF sketches do), then
//                 `rows` scalar xxHash32 computations and increments. This is
//                 the scalar-hash bottleneck the paper measures at up to
//                 49.2% degradation.
//  * CmsKernel  — native: fused SIMD multi-hash inlined directly (no call
//                 boundary at all).
//  * CmsEnetstl — eBPF program shape: one map lookup plus ONE fused kfunc
//                 call (HashCnt / HashCntMin). For rows <= 2 it uses the
//                 hardware-CRC single-hash path instead, as §6.2 describes.
#ifndef ENETSTL_NF_CMS_H_
#define ENETSTL_NF_CMS_H_

#include <vector>

#include "ebpf/maps.h"
#include "nf/nf_interface.h"

namespace nf {

struct CmsConfig {
  u32 rows = 4;    // number of hash functions d (1..8)
  u32 cols = 4096; // counters per row; power of two
  u32 seed = 0x9e3779b9u;
};

// Shared query/update vocabulary so tests can treat variants generically.
class CmsBase : public NetworkFunction {
 public:
  explicit CmsBase(const CmsConfig& config) : config_(config) {
    col_mask_ = config.cols - 1;
  }

  virtual void Update(const void* key, std::size_t len, u32 inc) = 0;
  virtual u32 Query(const void* key, std::size_t len) = 0;
  // Zeroes every counter (control-plane operation, e.g. epoch rollover).
  virtual void Reset() = 0;

  // Batched update: n fixed-size keys laid out `stride` bytes apart, each
  // incremented by `inc` — equivalent to n scalar Update() calls in order.
  // Default is the scalar loop; kernel and eNetSTL variants override it with
  // a two-stage hash+prefetch pipeline over the addressed counters.
  virtual void UpdateBatch(const void* keys, u32 stride, std::size_t len,
                           u32 n, u32 inc) {
    const u8* p = static_cast<const u8*>(keys);
    for (u32 i = 0; i < n; ++i) {
      Update(p + static_cast<std::size_t>(i) * stride, len, inc);
    }
  }

  // Packet path: update the sketch with the packet's 5-tuple.
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override {
    ebpf::FiveTuple tuple;
    if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
      return ebpf::XdpAction::kAborted;
    }
    Update(&tuple, sizeof(tuple), 1);
    return ebpf::XdpAction::kDrop;
  }

  // Burst packet path: parse every tuple, one batched sketch update.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) override;

  std::string_view name() const override { return "count-min-sketch"; }
  const CmsConfig& config() const { return config_; }

 protected:
  CmsConfig config_;
  u32 col_mask_;
};

class CmsEbpf : public CmsBase {
 public:
  explicit CmsEbpf(const CmsConfig& config);
  void Update(const void* key, std::size_t len, u32 inc) override;
  u32 Query(const void* key, std::size_t len) override;
  void Reset() override;
  Variant variant() const override { return Variant::kEbpf; }

 private:
  ebpf::RawPercpuArrayMap sketch_map_;
};

class CmsKernel : public CmsBase {
 public:
  explicit CmsKernel(const CmsConfig& config);
  void Update(const void* key, std::size_t len, u32 inc) override;
  u32 Query(const void* key, std::size_t len) override;
  void Reset() override;
  void UpdateBatch(const void* keys, u32 stride, std::size_t len, u32 n,
                   u32 inc) override;
  Variant variant() const override { return Variant::kKernel; }

 private:
  std::vector<u32> counters_;
};

class CmsEnetstl : public CmsBase {
 public:
  explicit CmsEnetstl(const CmsConfig& config);
  void Update(const void* key, std::size_t len, u32 inc) override;
  u32 Query(const void* key, std::size_t len) override;
  void Reset() override;
  // One batched-hash kfunc call per burst (hash_prefetch_batch for rows <= 2,
  // multi_hash_prefetch_batch otherwise), then the counter increments.
  void UpdateBatch(const void* keys, u32 stride, std::size_t len, u32 n,
                   u32 inc) override;
  Variant variant() const override { return Variant::kEnetstl; }

 private:
  ebpf::RawPercpuArrayMap sketch_map_;
};

}  // namespace nf

#endif  // ENETSTL_NF_CMS_H_
