// Tests for the Maglev consistent-hash ring used by the Katran app: full
// coverage, near-perfect balance, determinism, and the minimal-disruption
// property under backend changes that is Maglev's reason to exist.
#include <gtest/gtest.h>

#include <map>

#include "apps/katran_lb.h"

namespace apps {
namespace {

constexpr u32 kRing = 4099;  // prime
constexpr u32 kSeed = 0x1234;

std::vector<u32> Backends(u32 n, u32 base = 100) {
  std::vector<u32> backends(n);
  for (u32 i = 0; i < n; ++i) {
    backends[i] = base + i;
  }
  return backends;
}

TEST(Maglev, EverySlotAssigned) {
  const auto ring = BuildMaglevRing(Backends(7), kRing, kSeed);
  ASSERT_EQ(ring.size(), kRing);
  for (u32 slot : ring) {
    EXPECT_GE(slot, 100u);
    EXPECT_LT(slot, 107u);
  }
}

TEST(Maglev, Deterministic) {
  EXPECT_EQ(BuildMaglevRing(Backends(9), kRing, kSeed),
            BuildMaglevRing(Backends(9), kRing, kSeed));
  EXPECT_NE(BuildMaglevRing(Backends(9), kRing, kSeed),
            BuildMaglevRing(Backends(9), kRing, kSeed + 1));
}

TEST(Maglev, NearPerfectBalance) {
  const auto backends = Backends(12);
  const auto ring = BuildMaglevRing(backends, kRing, kSeed);
  std::map<u32, u32> counts;
  for (u32 slot : ring) {
    ++counts[slot];
  }
  ASSERT_EQ(counts.size(), backends.size());
  const u32 ideal = kRing / static_cast<u32>(backends.size());
  for (const auto& [backend, count] : counts) {
    // Maglev's guarantee: within ~1-2% of ideal (round-robin filling).
    EXPECT_NEAR(count, ideal, ideal / 50 + 2) << backend;
  }
}

TEST(Maglev, RemovalDisruptsOnlyTheRemovedBackendsShare) {
  auto backends = Backends(10);
  const auto before = BuildMaglevRing(backends, kRing, kSeed);
  backends.erase(backends.begin() + 3);  // remove one backend
  const auto after = BuildMaglevRing(backends, kRing, kSeed);
  u32 moved_unnecessarily = 0;
  u32 orphaned = 0;
  for (u32 slot = 0; slot < kRing; ++slot) {
    if (before[slot] == 103) {
      ++orphaned;  // must move, by definition
    } else if (before[slot] != after[slot]) {
      ++moved_unnecessarily;
    }
  }
  EXPECT_NEAR(orphaned, kRing / 10, kRing / 100);
  // Maglev bounds collateral movement to a small fraction of slots.
  EXPECT_LT(moved_unnecessarily, kRing / 10);
}

TEST(Maglev, SingleBackendOwnsRing) {
  const auto ring = BuildMaglevRing({42}, kRing, kSeed);
  for (u32 slot : ring) {
    ASSERT_EQ(slot, 42u);
  }
}

TEST(Maglev, EmptyBackendsYieldUnsetRing) {
  const auto ring = BuildMaglevRing({}, 97, kSeed);
  for (u32 slot : ring) {
    ASSERT_EQ(slot, 0xffffffffu);
  }
}

}  // namespace
}  // namespace apps
