// LRU flow cache — the paper's §4.5 flexibility claim made concrete:
// "the incorporation of support for non-contiguous memory significantly
// enhances eBPF's flexibility in facilitating other NFs, such as LRU based
// on lists."
//
// A classic LRU needs a doubly-linked recency list whose nodes are also
// reachable from a hash index — exactly the variable-count, pointer-routed
// allocation pattern pure eBPF cannot express (P1; the kernel's LRU map
// exists precisely because programs cannot build their own). With the
// memory wrapper it becomes an ordinary eBPF program:
//   * each entry is a node with two out-slots (next, prev);
//   * two sentinel nodes delimit the list;
//   * the hash index stores node kptrs as map values;
//   * a move-to-front is two NodeConnects (the wrapper's reverse-edge
//     bookkeeping unlinks the node as a side effect);
//   * eviction releases the tail node — lazy safety checking guarantees no
//     dangling pointer can survive even a buggy eviction order.
//
// Variants: kernel (native pointers) and eNetSTL (memory wrapper); as with
// the skip list, there is no pure-eBPF variant.
#ifndef ENETSTL_NF_LRU_CACHE_H_
#define ENETSTL_NF_LRU_CACHE_H_

#include <list>
#include <optional>
#include <unordered_map>

#include "core/memory_wrapper.h"
#include "ebpf/maps.h"
#include "nf/nf_interface.h"

namespace nf {

class LruCacheBase : public NetworkFunction {
 public:
  explicit LruCacheBase(u32 capacity) : capacity_(capacity) {}

  // Inserts or refreshes key -> value; evicts the least recently used entry
  // when the cache is full.
  virtual void Put(const ebpf::FiveTuple& key, u64 value) = 0;
  // Returns the value and marks the entry most recently used.
  virtual std::optional<u64> Get(const ebpf::FiveTuple& key) = 0;
  virtual u32 size() const = 0;

  // Packet path: cache hit -> TX; miss -> insert and PASS (flow setup).
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override {
    ebpf::FiveTuple tuple;
    if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
      return ebpf::XdpAction::kAborted;
    }
    if (Get(tuple).has_value()) {
      return ebpf::XdpAction::kTx;
    }
    Put(tuple, tuple.src_ip);
    return ebpf::XdpAction::kPass;
  }

  std::string_view name() const override { return "lru-flow-cache"; }
  u32 capacity() const { return capacity_; }

 protected:
  u32 capacity_;
};

class LruCacheKernel : public LruCacheBase {
 public:
  explicit LruCacheKernel(u32 capacity) : LruCacheBase(capacity) {}

  void Put(const ebpf::FiveTuple& key, u64 value) override;
  std::optional<u64> Get(const ebpf::FiveTuple& key) override;
  u32 size() const override { return static_cast<u32>(index_.size()); }
  Variant variant() const override { return Variant::kKernel; }

 private:
  struct Entry {
    ebpf::FiveTuple key;
    u64 value;
  };

  std::list<Entry> recency_;  // front = most recent
  std::unordered_map<ebpf::FiveTuple, std::list<Entry>::iterator,
                     ebpf::FiveTupleHash>
      index_;
};

class LruCacheEnetstl : public LruCacheBase {
 public:
  explicit LruCacheEnetstl(u32 capacity);
  ~LruCacheEnetstl() override = default;  // proxy frees all nodes
  LruCacheEnetstl(const LruCacheEnetstl&) = delete;
  LruCacheEnetstl& operator=(const LruCacheEnetstl&) = delete;

  void Put(const ebpf::FiveTuple& key, u64 value) override;
  std::optional<u64> Get(const ebpf::FiveTuple& key) override;
  u32 size() const override { return size_; }
  Variant variant() const override { return Variant::kEnetstl; }

  const enetstl::NodeProxy& proxy() const { return proxy_; }

 private:
  // Node payload: [FiveTuple key][u64 value].
  static constexpr u32 kKeyOff = 0;
  static constexpr u32 kValueOff = sizeof(ebpf::FiveTuple);
  static constexpr u32 kDataSize = kValueOff + sizeof(u64);
  // Out-slot 0 = next (toward tail), out-slot 1 = prev (toward head).
  static constexpr u32 kNext = 0;
  static constexpr u32 kPrev = 1;

  // Splices `node` out of the recency list (two NodeConnects; the wrapper's
  // reverse-edge bookkeeping clears the node's own out-slots).
  void Unlink(enetstl::Node* node);
  // Inserts `node` right after the head sentinel.
  void PushFront(enetstl::Node* node);
  void EvictOldest();

  enetstl::NodeProxy proxy_;
  enetstl::Node* head_;  // sentinel
  enetstl::Node* tail_;  // sentinel
  // The hash index holds node kptrs as map values (bpf_kptr_xchg pattern).
  ebpf::HashMap<ebpf::FiveTuple, enetstl::Node*> index_;
  u32 size_ = 0;
};

}  // namespace nf

#endif  // ENETSTL_NF_LRU_CACHE_H_
