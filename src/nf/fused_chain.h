// Fused single-pass chain execution — the hot-chain specialization path.
//
// The generic ChainExecutor burst walk treats every stage as an opaque
// packet program: it hands the stage a compacted survivor burst, collects
// verdicts, physically partitions survivors and regroups them for the next
// stage. That is the faithful tail-call model, but for a chain that is hot
// and structurally stable it re-derives per-stage configuration and re-walks
// the packet path on every burst — the abstraction tax Kops removes by
// compiling an eBPF chain into one native operation.
//
// FusedChain is the repro-scale analogue of that compilation step. At
// promotion time the chain's per-stage config is constant-folded into a flat
// FusedStage array (stage pointer, telemetry scope id, stats slot, observed
// per-stage latency, and — where the stage supports it — a key-level
// lowering of its packet path). Execution is then a single stage-major pass
// per burst that propagates a per-burst verdict BITMASK through all stages
// instead of partitioning and regrouping:
//
//  * Lowered stages (FusedKeyOp: parse -> membership decision) run over
//    5-tuple keys parsed once per packet per fusion window, through the
//    variant's batched lookup (cross-packet prefetch). The generic walk can
//    never do this — it only sees Process()/ProcessBurst() packet programs.
//  * Non-lowered stages fall back to the stage's own ProcessBurst over the
//    gathered live contexts in arrival order, which by the repo-wide
//    batching invariant (ProcessBurst == scalar Process, bit-identical) is
//    exactly what the generic partition walk feeds them. Any such stage may
//    rewrite frame bytes, so cached keys are conservatively invalidated.
//
// Verdicts, per-stage ChainStageStats, and the sampled obs event stream are
// bit-identical to the generic walk by construction; the differential suite
// in tests/test_fused_chain.cc enforces this at every depth 1..8. The
// generic walk stays the semantic oracle: scalar Process() always takes the
// tail-call path, and any chain reconfiguration demotes back to it.
//
// Tail-call budget: a fused burst stands in for one complete walk of
// `depth` programs per packet. Fuse() refuses chains outside
// ebpf::FusionWithinTailCallBudget (so fusion can never execute a chain the
// verifier would have rejected at Load()), and every burst charges the walk
// depth via ebpf::BeginFusedWalk.
#ifndef ENETSTL_NF_FUSED_CHAIN_H_
#define ENETSTL_NF_FUSED_CHAIN_H_

#include <chrono>
#include <functional>
#include <memory>
#include <vector>

#include "ebpf/prog_array.h"
#include "nf/nf_interface.h"
#include "obs/telemetry.h"

namespace nf {

struct ChainStageStats;  // chain.h (which includes this header)

// Promotion thresholds for the obs-driven fusion state machine (see
// ChainExecutor::EnableFusion). A chain promotes only after it has stayed
// structurally stable for `hot_bursts` consecutive bursts AND the
// stage-stats plane accounts for at least `min_packets` packets since the
// last reconfiguration — "hot and stable", both judged from observed
// traffic, never from configuration alone.
struct FusionPolicy {
  u32 hot_bursts = 32;
  u64 min_packets = 1024;
};

// Fusion lifecycle counters, exported next to stage_stats.
struct FusionStats {
  u64 promotions = 0;
  u64 demotions = 0;
  u64 fused_bursts = 0;
  u64 fused_packets = 0;
  u64 generic_bursts = 0;
  // Structural generation: bumped on every reconfiguration (Load, stage
  // replacement, fusion disable). A FusedChain is valid for exactly one
  // generation.
  u32 generation = 0;
};

// kControl obs-event codes emitted on the "<chain>/fused" scope.
inline constexpr u32 kFusionPromoteCode = 1;
inline constexpr u32 kFusionDemoteCode = 2;

// One constant-folded stage of a fused chain.
struct FusedStage {
  NetworkFunction* nf = nullptr;      // resolved stage pointer
  u16 scope = obs::kInvalidScope;     // telemetry scope id (folded at fusion)
  ChainStageStats* stats = nullptr;   // the chain's per-stage counter slot
  // Burst-average ns/pkt observed by the telemetry plane up to fusion time;
  // 0 when the stage was never sampled. Attribution constant only — lets
  // consumers of FusionStats reason about where a fused walk spends time
  // without re-deriving it from live histograms.
  u64 expected_ns = 0;
  bool lowered = false;
  // Valid when `lowered`: the stage's batched key-level membership op
  // (FusedKeyOp contract in nf_interface.h).
  std::function<void(const ebpf::FiveTuple*, u32, bool*)> contains;
};

namespace detail {
inline u64 ChainNowNs() {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now()
                                  .time_since_epoch())
                              .count());
}
}  // namespace detail

class FusedChain {
 public:
  // Builds the fused program from constant-folded stages. Returns nullptr
  // when the depth falls outside the tail-call budget — the shapes Load()
  // would have rejected must stay unreachable through fusion too.
  static std::unique_ptr<FusedChain> Fuse(std::vector<FusedStage> stages,
                                          u32 generation);

  FusedChain(const FusedChain&) = delete;
  FusedChain& operator=(const FusedChain&) = delete;

  // Single-pass burst execution; accepts any count (chunks internally at
  // kMaxNfBurst, the width of the verdict bitmask).
  void ExecuteBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts);

  u32 depth() const { return static_cast<u32>(stages_.size()); }
  u32 generation() const { return generation_; }
  u32 lowered_stages() const { return lowered_; }
  const FusedStage& stage(u32 i) const { return stages_[i]; }

 private:
  FusedChain(std::vector<FusedStage> stages, u32 generation);

  void BurstChunk(ebpf::XdpContext* ctxs, u32 count,
                  ebpf::XdpAction* verdicts);

  std::vector<FusedStage> stages_;
  u32 generation_;
  u32 lowered_ = 0;

  // Persistent per-burst scratch (single-threaded, like the chain's stats):
  // hoisted out of the hot path, and keys_ stays initialized across bursts
  // so dense-mode evaluation of dead lanes never reads indeterminate bytes.
  ebpf::XdpContext work_[kMaxNfBurst];
  ebpf::FiveTuple keys_[kMaxNfBurst] = {};
  bool hits_[kMaxNfBurst];
  ebpf::FiveTuple gather_keys_[kMaxNfBurst];
  ebpf::XdpContext gather_ctxs_[kMaxNfBurst];
  ebpf::XdpAction gather_verdicts_[kMaxNfBurst];
  u32 gather_slot_[kMaxNfBurst];
};

}  // namespace nf

#endif  // ENETSTL_NF_FUSED_CHAIN_H_
