// RSS-sharded multi-core measurement pipeline.
//
// Models the paper's strongest baselines' real-world deployment shape
// (CuckooSwitch, Katran): the NIC steers each flow to one RX queue with a
// receive-side-scaling hash over the 5-tuple, every queue is served by a
// worker pinned to its own CPU, and each worker runs the burst datapath over
// its queue. Flow affinity is a hard property — a flow's packets are only
// ever processed on one worker, which is what keeps percpu map state
// coherent without cross-CPU synchronization.
//
// Steering here is CRC32C over the packed 5-tuple modulo the worker count (a
// symmetric stand-in for the NIC's Toeplitz hash + indirection table).
//
// Measurement model: the host may have fewer physical CPUs than simulated
// workers (this harness often runs on a single shared vCPU), so per-shard
// throughput is computed from the worker thread's own CPU time
// (CLOCK_THREAD_CPUTIME_ID), not wall time. That simulates each worker
// owning a dedicated core: the aggregate rate is the sum of per-shard rates,
// and adding workers scales throughput the way added RSS queues do on real
// hardware, independent of host scheduling. Wall time is reported alongside
// for honesty.
#ifndef ENETSTL_PKTGEN_SHARDED_PIPELINE_H_
#define ENETSTL_PKTGEN_SHARDED_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "pktgen/pipeline.h"

namespace pktgen {

// RSS steering decision for a 5-tuple: CRC32C(tuple) % num_queues.
u32 RssQueueForTuple(const ebpf::FiveTuple& tuple, u32 num_queues, u32 seed);

// Packet-level steering; packets that fail 5-tuple parsing land on queue 0
// (real NICs steer non-IP traffic to a default queue).
u32 RssQueueForPacket(const Packet& packet, u32 num_queues, u32 seed);

// ---- RSS indirection table (failover re-steering) -------------------------
//
// Real NICs steer via hash -> indirection slot -> queue; shard failover is
// the host rewriting the slots of a dead queue to point at survivors. The
// sharded pipeline models that explicitly: the primary steering above is the
// identity-indirection special case, and on a worker fault the failed
// worker's unserved flows are re-steered through a rebuilt table.

// Indirection slot count (128 matches common NIC defaults, e.g. ixgbe).
inline constexpr u32 kRssIndirectionSize = 128;

// Fresh table mapping slot i -> i % num_queues (every queue alive).
std::vector<u32> BuildRssIndirection(u32 num_queues);

// Rewrites every slot pointing at a dead queue (alive[q] == false) to the
// least-loaded surviving queue. A survivor's load starts at its own queue
// depth (`queue_depths[q]`, packets already steered to it) and grows by one
// estimated slot share per absorbed slot, so the orphaned load lands on the
// queues with headroom instead of spreading blindly by slot order. Slots on
// live queues are untouched (their flows keep their affinity). No-op when no
// queue survives. Ties go to the lowest queue index (deterministic).
void RebuildRssIndirection(std::vector<u32>& table,
                           const std::vector<bool>& alive,
                           const std::vector<u64>& queue_depths);

// Depth-blind variant: every survivor starts at zero load, so the rebuild
// degenerates to an even spread (one slot share each, round-robin order).
void RebuildRssIndirection(std::vector<u32>& table,
                           const std::vector<bool>& alive);

// Steering through an indirection table: CRC32C(tuple) selects a slot, the
// slot names the queue.
u32 RssQueueViaIndirection(const ebpf::FiveTuple& tuple,
                           const std::vector<u32>& table, u32 seed);

// Packet-level variant; unparseable packets land on the queue in slot 0.
u32 RssQueueForPacketViaIndirection(const Packet& packet,
                                    const std::vector<u32>& table, u32 seed);

// Indirection slot (not queue) a packet hashes to: CRC32C(tuple) % size.
// Unparseable packets land on slot 0. The scale-out pipeline splits its
// trace by slot — the slot is the migration unit (a flow-group).
u32 RssSlotForPacket(const Packet& packet, u32 table_size, u32 seed);

// ---- Scale-out migration policy ------------------------------------------

// Obs-driven flow-migration controller configuration (MeasureScaleOut).
struct MigrationPolicy {
  // Master switch: false runs the same slot-granular engine with the table
  // frozen — the static-RSS oracle the differential tests compare against.
  bool enabled = true;
  u32 window_us = 200;           // controller poll period
  u32 k_windows = 3;             // consecutive over-threshold windows to act
  double skew_threshold = 1.25;  // max/mean estimated completion cost
  u32 max_slots_per_round = 4;   // re-steers per migration round
  u64 min_window_samples = 32;   // obs samples needed to trust a shard mean
  u32 ring_bytes = 1 << 14;      // per-shard handoff ring capacity
};

struct MigrationStats {
  u64 windows = 0;            // controller windows evaluated
  u64 triggers = 0;           // windows whose skew exceeded the threshold
  u64 rounds = 0;             // migration rounds that re-steered >= 1 slot
  u64 slots_moved = 0;        // successful Resteer commits (controller)
  u64 handoffs = 0;           // flow-group descriptors delivered
  u64 handoff_retries = 0;    // donations deferred by a full ring
  u64 failover_donations = 0; // slots donated by dying workers
  u64 swept_handoffs = 0;     // descriptors the controller re-delivered
                              // from retired shards' rings
  double last_skew = 0.0;     // skew at the controller's final window
  u64 final_generation = 0;   // steering generation at the end of the run
};

class ShardedPipeline {
 public:
  struct Options {
    u32 num_workers = 2;            // clamped to [1, ebpf::kNumPossibleCpus]
    u32 burst_size = 32;            // clamped to [1, kMaxBurstSize]
    u64 warmup_packets = 10'000;    // per worker
    u64 measure_packets = 200'000;  // aggregate across all workers
    u32 rss_seed = 0;
  };

  // Per-stage verdict/time breakdown a multi-stage shard program (e.g. an NF
  // chain) exports through its finish hook; empty for plain handlers.
  struct StageBreakdown {
    std::string name;
    u64 in = 0;  // packets entering the stage on this shard
    u64 pass = 0;
    u64 drop = 0;
    u64 tx = 0;
    u64 redirect = 0;
    u64 aborted = 0;
    u64 ns = 0;  // stage time accumulated on this shard's burst path
  };

  struct ShardStats {
    u32 cpu = 0;
    u64 queue_depth = 0;        // distinct trace packets steered to this queue
    double busy_seconds = 0.0;  // thread CPU time spent in the measured loop
    // Per-shard counts; pps/ns_per_packet are computed from busy_seconds
    // (dedicated-core model), seconds == busy_seconds. For a survivor that
    // absorbed failover load, stats.degraded counts the absorbed packets.
    ThroughputStats stats;
    // This worker tripped its "shard.kill.<cpu>" fault point mid-measurement
    // and was drained; its stats cover only the packets it served pre-fault.
    bool failed = false;
    // Filled by the shard program's finish hook, if it installed one.
    std::vector<StageBreakdown> stages;
    // Scale-out runs only: flow-group (indirection-slot) churn on this shard.
    u32 slots_initial = 0;  // slots owned at the start barrier
    u32 slots_adopted = 0;  // slots adopted from handoff descriptors
    u32 slots_donated = 0;  // slots donated away (migration or death)
  };

  struct Result {
    // packets/dropped/passed/aborted are exact sums over shards; pps is the
    // sum of per-shard rates (aggregate dedicated-core throughput); seconds
    // is the wall time of the whole measurement. When failover ran,
    // total.degraded counts packets served by survivors on behalf of failed
    // shards — the per-shard counts still sum exactly to measure_packets.
    ThroughputStats total;
    std::vector<ShardStats> shards;
    double wall_seconds = 0.0;
    // Failover summary: workers that tripped a kill fault, and the unserved
    // packet budget replayed onto survivors via the rebuilt indirection.
    // If every worker fails (or a failed worker's queue cannot be re-steered)
    // the unserved budget is dropped and total.packets < measure_packets.
    u32 failed_workers = 0;
    u64 failover_packets = 0;
    // Makespan view of the dedicated-core model: the run completes when its
    // slowest shard does, so the skew-honest aggregate rate is
    // packets / max_w(busy_seconds_w) — the number the scaling matrix and
    // its parallel-efficiency criterion use. total.pps (sum of per-shard
    // rates) is blind to imbalance: an idle shard contributes its full rate.
    double makespan_seconds = 0.0;
    double offered_pps = 0.0;
    // Per-stage counters merged across shards BY STAGE NAME (heterogeneous
    // shard programs keep their counters attributed to the right stage even
    // when stage positions differ between shards).
    std::vector<StageBreakdown> total_stages;
    // Scale-out runs only; zeroed by MeasureThroughput.
    MigrationStats migration;
  };

  // Invoked once per worker on the calling thread before the workers start;
  // the returned burst handler is owned by the pipeline for the run and
  // invoked only from that worker's thread. Build per-worker NF state here
  // (the RSS model: each core owns its queue, replica, or percpu shard) —
  // sharing one non-thread-safe NF across workers is a data race.
  using BurstHandler =
      std::function<void(ebpf::XdpContext*, u32, ebpf::XdpAction*)>;
  using HandlerFactory = std::function<BurstHandler(u32 cpu)>;

  // A shard program: the burst handler plus an optional finish hook, invoked
  // on the coordinating thread after the shard's measurement (including any
  // failover replay) completes. Multi-stage programs export their per-stage
  // counters into the shard's StageBreakdown there.
  struct ShardProgram {
    BurstHandler handler;
    std::function<void(ShardStats&)> finish;
  };
  using ProgramFactory = std::function<ShardProgram(u32 cpu)>;

  ShardedPipeline() : options_{} {}
  explicit ShardedPipeline(const Options& options);

  // Steers the trace across the workers, replays each queue through its
  // worker's handler, and merges per-CPU stats. Each worker measures
  // measure_packets * (its queue depth / trace size) packets, so the
  // offered-load split matches the flow split and the per-shard counts sum
  // exactly to measure_packets.
  //
  // Failover: every worker probes its "shard.kill.<cpu>" fault point once
  // per measured burst; a worker whose point fires stops serving, and after
  // the join its unserved budget is replayed on the surviving workers'
  // handlers with its queue re-steered through a rebuilt RSS indirection
  // table. One failover round — the replay does not probe kill points
  // (arming a second fault would need a second rebuild, which real NICs do,
  // but one round is enough to measure the degradation cost).
  Result MeasureThroughput(const HandlerFactory& factory,
                           const Trace& trace) const;

  // Program-factory variant; the plain HandlerFactory overload forwards here
  // with no finish hooks.
  Result MeasureThroughput(const ProgramFactory& factory,
                           const Trace& trace) const;

  // Skew-resilient scale-out engine (src/pktgen/scale_out.cc). Differences
  // from MeasureThroughput:
  //  * the work unit is the RSS indirection slot (flow-group), not the whole
  //    queue: the trace is pre-split into 128 per-slot sub-traces with the
  //    packet budget divided proportionally to slot depth;
  //  * slot ownership is a live indirection table (flow_migration.h); an
  //    obs-driven controller watches the per-shard "shard/<cpu>" latency
  //    histograms plus per-slot backlog and re-steers the hottest shard's
  //    slots to the coldest after `policy.k_windows` consecutive windows
  //    over `policy.skew_threshold`;
  //  * re-steered slot state moves through per-shard MPSC handoff rings at
  //    burst boundaries (handoff_ring.h) — per-flow order is preserved
  //    across every re-steer, and a dying worker ("shard.kill.<cpu>", same
  //    fault points as MeasureThroughput) donates its slots the same way,
  //    so migration and failover compose;
  //  * each worker binds its own SlabArena for all datapath bookkeeping
  //    (slot run-lists), so no allocation crosses a shard boundary.
  //
  // `policy.enabled = false` freezes the table: the engine then IS the
  // static-RSS semantics, which the differential tests use as the oracle.
  Result MeasureScaleOut(const ProgramFactory& factory, const Trace& trace,
                         const MigrationPolicy& policy) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

// Aggregates per-shard stage breakdowns by stage NAME, preserving first-seen
// order. Merging by name (not index) keeps counters correctly attributed
// when shard programs are heterogeneous — e.g. a survivor replaying a dead
// shard's budget through a chain with different stage positions.
std::vector<ShardedPipeline::StageBreakdown> MergeStageBreakdowns(
    const std::vector<ShardedPipeline::ShardStats>& shards);

}  // namespace pktgen

#endif  // ENETSTL_PKTGEN_SHARDED_PIPELINE_H_
