// Miniature eBPF-sketch-style telemetry service (Figure 7 integration case;
// after Miano et al., "Fast In-kernel Traffic Sketching in eBPF").
//
// Per packet the service feeds two estimators: a NitroSketch for per-flow
// rate estimation and a HeavyKeeper for top-k elephant detection.
//
// Origin core: pure-eBPF sketches (per-row helper randomness, scalar
// hashing). eNetSTL core: geometric random pool + fused-hash sketches.
#ifndef ENETSTL_APPS_EBPF_SKETCH_H_
#define ENETSTL_APPS_EBPF_SKETCH_H_

#include <memory>

#include "apps/katran_lb.h"  // CoreKind
#include "nf/heavykeeper.h"
#include "nf/nf_interface.h"
#include "nf/nitro.h"

namespace apps {

struct SketchServiceConfig {
  nf::NitroConfig nitro;
  nf::HeavyKeeperConfig heavykeeper;
};

class SketchService : public nf::NetworkFunction {
 public:
  SketchService(CoreKind core, const SketchServiceConfig& config);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  // Telemetry read-out.
  u32 EstimateRate(const ebpf::FiveTuple& tuple);
  std::vector<nf::HkTopEntry> TopFlows() const;

  std::string_view name() const override { return "sketch-service"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

 private:
  CoreKind core_;
  std::unique_ptr<nf::NitroBase> nitro_;
  std::unique_ptr<nf::HeavyKeeperBase> heavykeeper_;
};

}  // namespace apps

#endif  // ENETSTL_APPS_EBPF_SKETCH_H_
