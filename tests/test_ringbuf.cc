// Tests for the BPF_MAP_TYPE_RINGBUF model: reserve/submit/discard record
// lifecycle, overwrite-never full-ring behavior with drop accounting, wrap
// handling, reservation-order delivery, the acquire/release verifier
// contract (static manifest rules + dynamic RefLeakChecker), and the
// multi-producer / consumer-thread hand-off.
#include "ebpf/ringbuf.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "ebpf/verifier.h"

namespace ebpf {
namespace {

struct Record {
  u32 producer;
  u32 seq;
};

// Bytes the ring charges for one record: 8-byte header + padded payload.
u32 Charged(u32 payload) { return RingbufMap::kHeaderSize + ((payload + 7u) & ~7u); }

TEST(RingbufMap, SizeRoundsUpToPowerOfTwoWithPageFloor) {
  EXPECT_EQ(RingbufMap(1).size(), 4096u);
  EXPECT_EQ(RingbufMap(4096).size(), 4096u);
  EXPECT_EQ(RingbufMap(5000).size(), 8192u);
}

TEST(RingbufMap, ReserveSubmitConsumeRoundtrip) {
  RingbufMap ring(4096);
  const u64 reserves_before = GlobalHelperStats().ringbuf_reserve_calls;
  const u64 submits_before = GlobalHelperStats().ringbuf_submit_calls;

  void* payload = ring.Reserve(16);
  ASSERT_NE(payload, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(payload) % 8, 0u);
  std::memset(payload, 0xab, 16);
  ring.Submit(payload);

  EXPECT_EQ(GlobalHelperStats().ringbuf_reserve_calls, reserves_before + 1);
  EXPECT_EQ(GlobalHelperStats().ringbuf_submit_calls, submits_before + 1);

  std::size_t delivered = 0;
  const std::size_t n = ring.Consume([&](const void* data, u32 len) {
    ++delivered;
    EXPECT_EQ(len, 16u);
    for (u32 i = 0; i < len; ++i) {
      EXPECT_EQ(static_cast<const u8*>(data)[i], 0xab);
    }
  });
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(ring.consumer_pos(), Charged(16));
  EXPECT_EQ(ring.consumer_pos(), ring.producer_pos());
}

TEST(RingbufMap, InvalidSizesRejectedWithoutDropAccounting) {
  RingbufMap ring(4096);
  EXPECT_EQ(ring.Reserve(0), nullptr);
  EXPECT_EQ(ring.Reserve(RingbufMap::kLenMask + 1), nullptr);
  EXPECT_EQ(ring.Reserve(ring.size()), nullptr);  // header cannot fit
  EXPECT_EQ(ring.dropped_events(), 0u);
}

TEST(RingbufMap, DiscardedRecordIsSkippedNotDelivered) {
  RingbufMap ring(4096);
  void* a = ring.Reserve(8);
  void* b = ring.Reserve(8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  *static_cast<u64*>(b) = 42;
  ring.Discard(a);
  ring.Submit(b);

  std::vector<u64> seen;
  ring.Consume([&](const void* data, u32) {
    seen.push_back(*static_cast<const u64*>(data));
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 42u);
  // The discarded record's space is still reclaimed.
  EXPECT_EQ(ring.consumer_pos(), ring.producer_pos());
}

TEST(RingbufMap, EarlierReservationBlocksLaterSubmissions) {
  // Reservation-order delivery: b is submitted first, but the consumer must
  // not pass the still-busy a, and once a completes both come out in
  // reservation order.
  RingbufMap ring(4096);
  void* a = ring.Reserve(8);
  void* b = ring.Reserve(8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  *static_cast<u64*>(a) = 1;
  *static_cast<u64*>(b) = 2;
  ring.Submit(b);

  std::vector<u64> seen;
  const auto collect = [&](const void* data, u32) {
    seen.push_back(*static_cast<const u64*>(data));
  };
  EXPECT_EQ(ring.Consume(collect), 0u);

  ring.Submit(a);
  EXPECT_EQ(ring.Consume(collect), 2u);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], 1u);
  EXPECT_EQ(seen[1], 2u);
}

TEST(RingbufFull, ReserveOnFullRingReturnsNullAndCountsDrop) {
  RingbufMap ring(4096);
  // Two records of charged size 2048 fill the 4096-byte ring exactly.
  void* a = ring.Reserve(2040);
  void* b = ring.Reserve(2040);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  EXPECT_EQ(ring.Reserve(8), nullptr);
  EXPECT_EQ(ring.dropped_events(), 1u);
  EXPECT_EQ(ring.Reserve(8), nullptr);
  EXPECT_EQ(ring.dropped_events(), 2u);

  // Overwrite-never: the full ring never clobbered the pending records.
  ring.Submit(a);
  ring.Submit(b);
  EXPECT_EQ(ring.Consume([](const void*, u32) {}), 2u);

  // Space reclaimed by the consumer is reusable.
  EXPECT_NE(ring.Reserve(8), nullptr);
  EXPECT_EQ(ring.dropped_events(), 2u);
}

TEST(RingbufFull, WrapMarkerPreservesRecordIntegrity) {
  // Records never straddle the ring end: after a 3000-byte record is
  // consumed, the next one would cross offset 4096, so a wrap marker pads
  // the tail and the record lands contiguously at offset 0.
  RingbufMap ring(4096);
  for (int round = 0; round < 8; ++round) {
    void* payload = ring.Reserve(3000);
    ASSERT_NE(payload, nullptr) << "round " << round;
    std::memset(payload, 0x30 + round, 3000);
    ring.Submit(payload);
    std::size_t delivered = 0;
    ring.Consume([&](const void* data, u32 len) {
      ++delivered;
      ASSERT_EQ(len, 3000u);
      for (u32 i = 0; i < len; ++i) {
        ASSERT_EQ(static_cast<const u8*>(data)[i], 0x30 + round);
      }
    });
    ASSERT_EQ(delivered, 1u);
  }
  EXPECT_EQ(ring.dropped_events(), 0u);
}

TEST(RingbufMap, OutputIsReserveCopySubmitInOneCall) {
  RingbufMap ring(4096);
  const u64 value = 0x1122334455667788ull;
  ASSERT_EQ(ring.Output(&value, sizeof(value)), kOk);

  u64 seen = 0;
  ring.Consume([&](const void* data, u32 len) {
    ASSERT_EQ(len, sizeof(u64));
    std::memcpy(&seen, data, sizeof(u64));
  });
  EXPECT_EQ(seen, value);

  // Full ring: Output fails with kErrNoSpc and counts the drop. Fresh ring
  // so the blocker can leave fewer than 16 charged bytes free.
  RingbufMap full(4096);
  void* blocker = full.Reserve(4080);  // charged 4088 of 4096
  ASSERT_NE(blocker, nullptr);
  EXPECT_EQ(full.Output(&value, sizeof(value)), kErrNoSpc);
  EXPECT_EQ(full.dropped_events(), 1u);
  full.Discard(blocker);
}

TEST(RingbufContract, LeakedReservationFlaggedByRefLeakChecker) {
  RingbufMap ring(4096);
  RefLeakChecker checker;
  ring.SetRefTracker(&checker);

  void* leaked = ring.Reserve(16);
  ASSERT_NE(leaked, nullptr);
  // The reservation is live until submit/discard — exactly what the checker
  // reports as a leak if the program exits here.
  EXPECT_EQ(checker.LiveCount(RingbufMap::kResourceClass), 1u);

  void* ok = ring.Reserve(16);
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(checker.LiveCount(RingbufMap::kResourceClass), 2u);
  ring.Submit(ok);
  EXPECT_EQ(checker.LiveCount(RingbufMap::kResourceClass), 1u);

  ring.Discard(leaked);
  EXPECT_EQ(checker.LiveCount(RingbufMap::kResourceClass), 0u);

  // A failed reserve acquires nothing.
  ring.SetRefTracker(&checker);
  EXPECT_EQ(ring.Reserve(0), nullptr);
  EXPECT_EQ(checker.LiveCount(), 0u);
}

ProgramSpec RingbufSpec() {
  ProgramSpec spec;
  spec.name = "ringbuf-user";
  spec.type = ProgramType::kXdp;
  return spec;
}

TEST(RingbufVerifier, BalancedReserveSubmitPasses) {
  RegisterRingbufKfuncs();
  const Verifier verifier(KfuncRegistry::Global());

  ProgramSpec spec = RingbufSpec();
  spec.kfunc_calls.push_back({"bpf_ringbuf_reserve", true});
  spec.kfunc_calls.push_back({"bpf_ringbuf_submit", false});
  EXPECT_TRUE(verifier.Verify(spec).ok);

  // Discard balances the acquire just as well.
  spec.kfunc_calls[1].name = "bpf_ringbuf_discard";
  EXPECT_TRUE(verifier.Verify(spec).ok);

  // bpf_ringbuf_output holds no reference; alone it is fine.
  ProgramSpec output_spec = RingbufSpec();
  output_spec.kfunc_calls.push_back({"bpf_ringbuf_output", false});
  EXPECT_TRUE(verifier.Verify(output_spec).ok);
}

TEST(RingbufVerifier, ReserveWithoutReleaseRejected) {
  RegisterRingbufKfuncs();
  const Verifier verifier(KfuncRegistry::Global());
  ProgramSpec spec = RingbufSpec();
  spec.kfunc_calls.push_back({"bpf_ringbuf_reserve", true});
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(RingbufVerifier, SubmitWithoutReserveRejected) {
  RegisterRingbufKfuncs();
  const Verifier verifier(KfuncRegistry::Global());
  ProgramSpec spec = RingbufSpec();
  spec.kfunc_calls.push_back({"bpf_ringbuf_submit", false});
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(RingbufVerifier, UncheckedMaybeNullReserveRejected) {
  RegisterRingbufKfuncs();
  const Verifier verifier(KfuncRegistry::Global());
  ProgramSpec spec = RingbufSpec();
  spec.kfunc_calls.push_back({"bpf_ringbuf_reserve", false});
  spec.kfunc_calls.push_back({"bpf_ringbuf_submit", false});
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(RingbufConsumerTest, StopPerformsFinalDrain) {
  RingbufMap ring(4096);
  constexpr u32 kRecords = 32;
  for (u32 i = 0; i < kRecords; ++i) {
    void* payload = ring.Reserve(8);
    ASSERT_NE(payload, nullptr);
    *static_cast<u64*>(payload) = i;
    ring.Submit(payload);
  }
  u64 sum = 0;
  RingbufConsumer consumer(
      ring, [&](const void* data, u32) { sum += *static_cast<const u64*>(data); });
  consumer.Stop();  // must drain everything submitted before the stop
  EXPECT_EQ(consumer.consumed(), kRecords);
  EXPECT_EQ(sum, kRecords * (kRecords - 1) / 2);
}

TEST(RingbufStress, MultiProducerPerProducerOrderAndNoLoss) {
  // Four producer threads push sequenced records through a deliberately small
  // ring while a RingbufConsumer drains it; producers retry on full, so
  // every record arrives exactly once and, per producer, in submit order.
  // (Global order across producers is whatever the reservation lock decided.)
  constexpr u32 kProducers = 4;
  constexpr u32 kPerProducer = 2000;
  RingbufMap ring(4096);

  std::vector<std::vector<u32>> seen(kProducers);
  RingbufConsumer consumer(
      ring,
      [&](const void* data, u32 len) {
        ASSERT_EQ(len, sizeof(Record));
        Record rec;
        std::memcpy(&rec, data, sizeof(rec));
        ASSERT_LT(rec.producer, kProducers);
        seen[rec.producer].push_back(rec.seq);
      },
      std::chrono::microseconds(100));

  std::vector<std::thread> producers;
  for (u32 p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (u32 seq = 0; seq < kPerProducer; ++seq) {
        void* payload;
        while ((payload = ring.Reserve(sizeof(Record))) == nullptr) {
          std::this_thread::yield();  // ring full: wait for the consumer
        }
        const Record rec{p, seq};
        std::memcpy(payload, &rec, sizeof(rec));
        ring.Submit(payload);
      }
    });
  }
  for (std::thread& t : producers) {
    t.join();
  }
  consumer.Stop();

  EXPECT_EQ(consumer.consumed(), u64{kProducers} * kPerProducer);
  for (u32 p = 0; p < kProducers; ++p) {
    ASSERT_EQ(seen[p].size(), kPerProducer) << "producer " << p;
    for (u32 seq = 0; seq < kPerProducer; ++seq) {
      ASSERT_EQ(seen[p][seq], seq) << "producer " << p;
    }
  }
}

}  // namespace
}  // namespace ebpf
