// Conntrack/NAT family tests: the arena-backed paired FlowTable (both-tuple
// visibility, lazy expiry, timewheel sweeps, LRU degradation, batched lookup
// purity), the TCP-ish state machine and SNAT rewrites of both engine
// variants, burst/scalar bit-identity under churn (including the 3*64+7
// remainder tail), filter-mode lowering to a fused key op, and cross-variant
// state transfer.
#include "nf/conntrack.h"

#include <gtest/gtest.h>

#include <cstring>
#include <unordered_map>
#include <vector>

#include "core/fault_injector.h"
#include "ebpf/helper.h"
#include "ebpf/program.h"
#include "ebpf/verifier.h"
#include "pktgen/flowgen.h"
#include "pktgen/packet.h"

namespace nf {
namespace {

ebpf::FiveTuple TcpFlow(u32 i) {
  ebpf::FiveTuple t;
  t.src_ip = 0x0a000000u + i;
  t.dst_ip = 0xc0a80000u + (i * 7u + 1u);
  t.src_port = static_cast<u16>(1024 + (i % 50000));
  t.dst_port = 443;
  t.protocol = kProtoTcp;
  return t;
}

ebpf::FiveTuple UdpFlow(u32 i) {
  ebpf::FiveTuple t = TcpFlow(i);
  t.protocol = 17;
  return t;
}

pktgen::Packet MakePacket(const ebpf::FiveTuple& t, u8 tcp_flags = 0) {
  pktgen::Packet p = pktgen::Packet::FromTuple(t);
  if (tcp_flags != 0) {
    // TCP flags live at kL4HeaderOffset + 13 = byte 1 of payload word 1.
    p.SetPayloadWord(1, static_cast<u32>(tcp_flags) << 8);
  }
  return p;
}

ebpf::XdpAction RunScalar(NetworkFunction& nf, pktgen::Packet& p) {
  ebpf::XdpContext ctx{p.frame, p.frame + ebpf::kFrameSize, 0};
  return nf.Process(ctx);
}

u32 FrameSrcIp(const pktgen::Packet& p) {
  u32 v;
  std::memcpy(&v, p.frame + ebpf::kIpHeaderOffset + 12, 4);
  return v;
}

u32 FrameDstIp(const pktgen::Packet& p) {
  u32 v;
  std::memcpy(&v, p.frame + ebpf::kIpHeaderOffset + 16, 4);
  return v;
}

u16 FrameSrcPort(const pktgen::Packet& p) {
  u16 v;
  std::memcpy(&v, p.frame + ebpf::kL4HeaderOffset, 2);
  return v;
}

u16 FrameDstPort(const pktgen::Packet& p) {
  u16 v;
  std::memcpy(&v, p.frame + ebpf::kL4HeaderOffset + 2, 2);
  return v;
}

class ConntrackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ebpf::SetCurrentCpu(0);
    enetstl::FaultInjector::Global().Reset();
  }
  void TearDown() override { enetstl::FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// FlowTable (arena engine) unit tests.
// ---------------------------------------------------------------------------

using FlowTableTest = ConntrackTest;

TEST_F(FlowTableTest, PairedInsertVisibleUnderBothTuplesOrNeither) {
  FlowTableConfig config;
  FlowTable table(config);
  const ebpf::FiveTuple fwd = TcpFlow(1);
  const ebpf::FiveTuple rev = FlowTable::ReverseTuple(fwd);
  u32 handle;
  FlowEntry* e = table.Insert(fwd, rev, 77, FlowState::kEstablished, 0, 0, 0,
                              &handle);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(table.live_flows(), 1u);

  u8 dir;
  u32 h2;
  FlowEntry* by_fwd = table.Find(fwd, 1, &dir, &h2);
  ASSERT_EQ(by_fwd, e);
  EXPECT_EQ(dir, 0);
  EXPECT_EQ(h2, handle);

  FlowEntry* by_rev = table.Find(rev, 1, &dir, &h2);
  ASSERT_EQ(by_rev, e);
  EXPECT_EQ(dir, 1);
  EXPECT_EQ(h2, handle);
  EXPECT_EQ(by_rev->value, 77u);

  // Erase through the REVERSE tuple removes both directions (the pairing
  // invariant: a flow is observable under both tuples or neither).
  EXPECT_TRUE(table.Erase(rev));
  EXPECT_EQ(table.FindConst(fwd, 1, &dir), nullptr);
  EXPECT_EQ(table.FindConst(rev, 1, &dir), nullptr);
  EXPECT_EQ(table.live_flows(), 0u);
}

TEST_F(FlowTableTest, LazyExpiryFreesOnLookupWithoutSweep) {
  FlowTableConfig config;
  FlowTable table(config);
  const ebpf::FiveTuple fwd = UdpFlow(3);
  u32 handle;
  ASSERT_NE(table.Insert(fwd, FlowTable::ReverseTuple(fwd), 0,
                         FlowState::kUdpIdle, 0, 0, 0, &handle),
            nullptr);
  const u64 dead = config.udp_timeout_ns + 1;
  // FindConst is pure: reports absent, frees nothing.
  u8 dir;
  EXPECT_EQ(table.FindConst(fwd, dead, &dir), nullptr);
  EXPECT_EQ(table.live_flows(), 1u);
  // Find lazily collects the due pair — no timewheel sweep ran.
  u32 h2;
  EXPECT_EQ(table.Find(fwd, dead, &dir, &h2), nullptr);
  EXPECT_EQ(table.live_flows(), 0u);
  EXPECT_EQ(table.stats().expired_lazy, 1u);
  EXPECT_EQ(table.stats().timeout_evictions, 0u);
}

TEST_F(FlowTableTest, TimewheelSweepEvictsDueFlowsInBatches) {
  FlowTableConfig config;
  FlowTable table(config);
  constexpr u32 kFlows = 300;  // > one AdvanceOneSlot batch
  for (u32 i = 0; i < kFlows; ++i) {
    const ebpf::FiveTuple fwd = TcpFlow(i);
    u32 handle;
    ASSERT_NE(table.Insert(fwd, FlowTable::ReverseTuple(fwd), i,
                           FlowState::kNew, 0, 0, 0, &handle),
              nullptr);
  }
  EXPECT_EQ(table.live_flows(), kFlows);
  const u32 evicted =
      table.Advance(config.new_timeout_ns + 2 * config.wheel_granularity_ns);
  EXPECT_EQ(evicted, kFlows);
  EXPECT_EQ(table.live_flows(), 0u);
  EXPECT_EQ(table.stats().timeout_evictions, kFlows);
}

TEST_F(FlowTableTest, RefreshExtendsLifeAndDeliveryReArmsLazily) {
  FlowTableConfig config;
  FlowTable table(config);
  const ebpf::FiveTuple fwd = TcpFlow(9);
  u32 handle;
  FlowEntry* e = table.Insert(fwd, FlowTable::ReverseTuple(fwd), 0,
                              FlowState::kNew, 0, 0, 0, &handle);
  ASSERT_NE(e, nullptr);
  // Refresh at t1: expiry moves to t1 + new_timeout. The armed timer is NOT
  // re-filed (O(1) refresh); the original delivery must find the flow fresh
  // and re-arm instead of evicting.
  const u64 t1 = config.new_timeout_ns / 2;
  table.Refresh(e, handle, t1);
  EXPECT_EQ(table.Advance(config.new_timeout_ns +
                          2 * config.wheel_granularity_ns),
            0u);
  EXPECT_EQ(table.live_flows(), 1u);
  EXPECT_GE(table.stats().timer_rearms, 1u);
  // Past the refreshed expiry the re-armed timer evicts.
  EXPECT_EQ(table.Advance(t1 + config.new_timeout_ns +
                          2 * config.wheel_granularity_ns),
            1u);
  EXPECT_EQ(table.live_flows(), 0u);
}

TEST_F(FlowTableTest, ArenaExhaustionEvictsLruOldestPairConsistently) {
  FlowTableConfig config;
  config.max_flows = 256;  // exactly one slab: hard capacity
  FlowTable table(config);
  std::vector<ebpf::FiveTuple> flows;
  for (u32 i = 0; i < 256; ++i) {
    flows.push_back(TcpFlow(i));
    u32 handle;
    ASSERT_NE(table.Insert(flows[i], FlowTable::ReverseTuple(flows[i]), i,
                           FlowState::kEstablished, 0, 0, 0, &handle),
              nullptr);
  }
  EXPECT_EQ(table.live_flows(), 256u);
  // Touch flow 0 so flow 1 is the LRU victim.
  u8 dir;
  u32 h;
  ASSERT_NE(table.Find(flows[0], 0, &dir, &h), nullptr);
  table.Refresh(table.Find(flows[0], 0, &dir, &h), h, 0);

  const ebpf::FiveTuple extra = TcpFlow(1000);
  u32 handle;
  ASSERT_NE(table.Insert(extra, FlowTable::ReverseTuple(extra), 1000,
                         FlowState::kEstablished, 0, 0, 0, &handle),
            nullptr);
  EXPECT_EQ(table.stats().lru_evictions, 1u);
  EXPECT_EQ(table.live_flows(), 256u);
  // The victim left under BOTH tuples; the touched flow survived.
  EXPECT_EQ(table.FindConst(flows[1], 0, &dir), nullptr);
  EXPECT_EQ(table.FindConst(FlowTable::ReverseTuple(flows[1]), 0, &dir),
            nullptr);
  EXPECT_NE(table.FindConst(flows[0], 0, &dir), nullptr);
  EXPECT_NE(table.FindConst(extra, 0, &dir), nullptr);
}

TEST_F(FlowTableTest, FaultInjectedAllocationTakesEvictionPath) {
  FlowTableConfig config;
  FlowTable table(config);
  std::vector<ebpf::FiveTuple> flows;
  for (u32 i = 0; i < 4; ++i) {
    flows.push_back(TcpFlow(i));
    u32 handle;
    ASSERT_NE(table.Insert(flows[i], FlowTable::ReverseTuple(flows[i]), i,
                           FlowState::kEstablished, 0, 0, 0, &handle),
              nullptr);
  }
  // Force the -ENOSPC degradation without actually filling the arena.
  enetstl::FaultInjector::Global().ArmOneShot("conntrack.insert", 0);
  const ebpf::FiveTuple extra = TcpFlow(50);
  u32 handle;
  ASSERT_NE(table.Insert(extra, FlowTable::ReverseTuple(extra), 50,
                         FlowState::kEstablished, 0, 0, 0, &handle),
            nullptr);
  EXPECT_EQ(table.stats().lru_evictions, 1u);
  u8 dir;
  EXPECT_EQ(table.FindConst(flows[0], 0, &dir), nullptr);  // oldest evicted
  EXPECT_NE(table.FindConst(extra, 0, &dir), nullptr);
  EXPECT_EQ(table.live_flows(), 4u);
}

TEST_F(FlowTableTest, FindBatchMatchesScalarAndStaysPure) {
  FlowTableConfig config;
  FlowTable table(config);
  // Mixed population: established (long timeout) and one FIN-wait flow that
  // will be due at probe time.
  std::vector<ebpf::FiveTuple> flows;
  for (u32 i = 0; i < 16; ++i) {
    flows.push_back(TcpFlow(i));
    u32 handle;
    ASSERT_NE(table.Insert(flows[i], FlowTable::ReverseTuple(flows[i]), i,
                           i == 5 ? FlowState::kFinWait
                                  : FlowState::kEstablished,
                           0, 0, 0, &handle),
              nullptr);
  }
  const u64 now = config.fin_timeout_ns + 1;  // flow 5 due, others fresh
  ebpf::FiveTuple keys[48];
  u32 n = 0;
  for (u32 i = 0; i < 16; ++i) {
    keys[n++] = flows[i];                            // forward hits
    keys[n++] = FlowTable::ReverseTuple(flows[i]);   // reverse hits
    keys[n++] = TcpFlow(1000 + i);                   // misses
  }
  FlowTable::Lookup looks[48];
  const u64 epoch = table.mutation_epoch();
  table.FindBatch(keys, n, now, looks);
  EXPECT_EQ(table.mutation_epoch(), epoch);   // pure
  EXPECT_EQ(table.live_flows(), 16u);         // due entry NOT collected
  for (u32 i = 0; i < n; ++i) {
    u8 dir;
    const FlowEntry* scalar = table.FindConst(keys[i], now, &dir);
    if (scalar != nullptr) {
      ASSERT_EQ(looks[i].kind, FlowTable::Lookup::kHit) << "i=" << i;
      EXPECT_EQ(looks[i].entry, scalar);
      EXPECT_EQ(looks[i].dir, dir);
    } else if (looks[i].kind != FlowTable::Lookup::kMiss) {
      // Batch may additionally report kExpired where FindConst says absent.
      ASSERT_EQ(looks[i].kind, FlowTable::Lookup::kExpired) << "i=" << i;
      EXPECT_LE(looks[i].entry->expires_ns, now);
    }
  }
  // The due flow shows up as kExpired under both of its tuples.
  u32 expired_seen = 0;
  for (u32 i = 0; i < n; ++i) {
    expired_seen += looks[i].kind == FlowTable::Lookup::kExpired;
  }
  EXPECT_EQ(expired_seen, 2u);
}

TEST_F(FlowTableTest, LeakCheckerSeesZeroLiveSlotsAfterChurnAndClear) {
  ebpf::RefLeakChecker checker;
  FlowTableConfig config;
  config.max_flows = 256;
  FlowTable table(config);
  table.SetLeakChecker(&checker);
  pktgen::Rng rng(0x51ab);
  std::vector<ebpf::FiveTuple> live;
  for (u32 op = 0; op < 4000; ++op) {
    const u32 r = static_cast<u32>(rng.NextBounded(100));
    if (r < 60 || live.empty()) {
      const ebpf::FiveTuple f = TcpFlow(static_cast<u32>(rng.NextU32()));
      u32 handle;
      if (table.Insert(f, FlowTable::ReverseTuple(f), 0,
                       FlowState::kEstablished, 0, 0, 0, &handle) != nullptr) {
        live.push_back(f);
      }
    } else {
      const std::size_t pick = rng.NextBounded(live.size());
      table.Erase(live[pick]);  // may already be LRU-evicted: fine
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  EXPECT_EQ(checker.LiveCount("conntrack.flow"), table.live_flows());
  table.Clear();
  EXPECT_EQ(table.live_flows(), 0u);
  EXPECT_EQ(checker.LiveCount("conntrack.flow"), 0u);
}

// ---------------------------------------------------------------------------
// Conntrack NF: state machine, NAT rewrites, burst equivalence, lowering.
// ---------------------------------------------------------------------------

std::unique_ptr<ConntrackBase> MakeCt(Variant v, const ConntrackConfig& c) {
  if (v == Variant::kEbpf) {
    return std::make_unique<ConntrackEbpf>(c);
  }
  return std::make_unique<ConntrackEnetstl>(c);
}

class ConntrackBothVariants : public ::testing::TestWithParam<Variant> {
 protected:
  void SetUp() override {
    ebpf::SetCurrentCpu(0);
    enetstl::FaultInjector::Global().Reset();
  }
};

TEST_P(ConntrackBothVariants, TcpStateMachineLifecycle) {
  ConntrackConfig config;
  config.mode = CtMode::kTrack;
  auto ct = MakeCt(GetParam(), config);
  const ebpf::FiveTuple fwd = TcpFlow(1);
  const ebpf::FiveTuple rev = FlowTable::ReverseTuple(fwd);

  // SYN-ish first packet creates a NEW flow and passes.
  pktgen::Packet syn = MakePacket(fwd);
  EXPECT_EQ(RunScalar(*ct, syn), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->created(), 1u);

  // Reply direction promotes to ESTABLISHED.
  pktgen::Packet reply = MakePacket(rev);
  EXPECT_EQ(RunScalar(*ct, reply), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->hits(), 1u);

  // FIN moves to FIN-wait (short timeout class) but still passes.
  pktgen::Packet fin = MakePacket(fwd, kTcpFin);
  EXPECT_EQ(RunScalar(*ct, fin), ebpf::XdpAction::kPass);

  // RST tears the flow down immediately...
  pktgen::Packet rst = MakePacket(rev, kTcpRst);
  EXPECT_EQ(RunScalar(*ct, rst), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->torn_down(), 1u);

  // ...so the next forward packet is a miss that re-creates state.
  pktgen::Packet again = MakePacket(fwd);
  EXPECT_EQ(RunScalar(*ct, again), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->created(), 2u);

  // A stray RST for an unknown flow passes without creating state.
  pktgen::Packet stray = MakePacket(TcpFlow(99), kTcpRst);
  EXPECT_EQ(RunScalar(*ct, stray), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->created(), 2u);
}

TEST_P(ConntrackBothVariants, UdpFlowsUseIdleTimeoutClass) {
  ConntrackConfig config;
  config.mode = CtMode::kTrack;
  auto ct = MakeCt(GetParam(), config);
  const ebpf::FiveTuple fwd = UdpFlow(2);
  pktgen::Packet p = MakePacket(fwd);
  EXPECT_EQ(RunScalar(*ct, p), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->created(), 1u);
  // Beyond the UDP idle timeout the flow lazily expires: the packet is a
  // miss that re-creates state.
  ct->SetNow(config.table.udp_timeout_ns + 1);
  pktgen::Packet q = MakePacket(fwd);
  EXPECT_EQ(RunScalar(*ct, q), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->created(), 2u);
  EXPECT_EQ(ct->misses(), 2u);
}

TEST_P(ConntrackBothVariants, NatRewritesForwardAndReverse) {
  ConntrackConfig config;
  config.mode = CtMode::kNat;
  auto ct = MakeCt(GetParam(), config);
  const ebpf::FiveTuple fwd = TcpFlow(4);

  // Forward packet: source rewritten to the first pool binding.
  pktgen::Packet out = MakePacket(fwd);
  EXPECT_EQ(RunScalar(*ct, out), ebpf::XdpAction::kPass);
  EXPECT_EQ(FrameSrcIp(out), config.nat_ip_base);
  EXPECT_EQ(FrameSrcPort(out), static_cast<u16>(config.nat_port_base));
  EXPECT_EQ(FrameDstIp(out), fwd.dst_ip);  // destination untouched (SNAT)

  // Reply addressed to the binding: destination rewritten back to the
  // original initiator (the netfilter reply-tuple rule).
  ebpf::FiveTuple reply;
  reply.src_ip = fwd.dst_ip;
  reply.dst_ip = config.nat_ip_base;
  reply.src_port = fwd.dst_port;
  reply.dst_port = static_cast<u16>(config.nat_port_base);
  reply.protocol = fwd.protocol;
  pktgen::Packet back = MakePacket(reply);
  EXPECT_EQ(RunScalar(*ct, back), ebpf::XdpAction::kPass);
  EXPECT_EQ(ct->hits(), 1u);
  EXPECT_EQ(FrameDstIp(back), fwd.src_ip);
  EXPECT_EQ(FrameDstPort(back), fwd.src_port);
  EXPECT_EQ(FrameSrcIp(back), fwd.dst_ip);  // source untouched on replies

  // A second flow draws the next binding — bindings are collision-free.
  pktgen::Packet out2 = MakePacket(TcpFlow(5));
  EXPECT_EQ(RunScalar(*ct, out2), ebpf::XdpAction::kPass);
  EXPECT_EQ(FrameSrcPort(out2), static_cast<u16>(config.nat_port_base + 1));
}

INSTANTIATE_TEST_SUITE_P(Variants, ConntrackBothVariants,
                         ::testing::Values(Variant::kEbpf, Variant::kEnetstl),
                         [](const auto& info) {
                           return info.param == Variant::kEbpf ? "eBPF"
                                                               : "eNetSTL";
                         });

using ConntrackNfTest = ConntrackTest;

// Burst/scalar bit-identity under create/refresh/teardown churn, through the
// 3*64+7 remainder tail (satellite: burst remainder tails through the
// conntrack batched lookup path), with LRU capacity pressure so the
// mutation-epoch fallback is exercised.
TEST_F(ConntrackNfTest, BurstMatchesScalarWithChurnAndRemainderTail) {
  ConntrackConfig config;
  config.mode = CtMode::kTrack;
  config.table.max_flows = 256;  // forces LRU evictions mid-burst
  ConntrackEnetstl burst_ct(config);
  ConntrackEnetstl scalar_ct(config);

  const auto flows = pktgen::MakeFlowPopulation(600, 0xc0ffee);
  pktgen::Rng rng(0xc7a11);
  constexpr u32 kBurst = 3 * 64 + 7;  // 199: three full chunks + tail
  u64 now = 0;
  for (u32 round = 0; round < 12; ++round) {
    std::vector<pktgen::Packet> a(kBurst), b(kBurst);
    for (u32 i = 0; i < kBurst; ++i) {
      ebpf::FiveTuple t = flows[rng.NextBounded(flows.size())];
      if (rng.NextBounded(3) == 0) {
        t = FlowTable::ReverseTuple(t);  // reply direction
      }
      u8 flags = 0;
      const u32 r = static_cast<u32>(rng.NextBounded(100));
      if (r < 4) {
        flags = kTcpRst;
      } else if (r < 10) {
        flags = kTcpFin;
      }
      a[i] = MakePacket(t, flags);
      b[i] = a[i];
    }
    std::vector<ebpf::XdpContext> ctxs(kBurst);
    for (u32 i = 0; i < kBurst; ++i) {
      ctxs[i] = ebpf::XdpContext{a[i].frame, a[i].frame + ebpf::kFrameSize, 0};
    }
    std::vector<ebpf::XdpAction> verdicts(kBurst, ebpf::XdpAction::kAborted);
    burst_ct.ProcessBurst(ctxs.data(), kBurst, verdicts.data());
    for (u32 i = 0; i < kBurst; ++i) {
      EXPECT_EQ(verdicts[i], RunScalar(scalar_ct, b[i]))
          << "round=" << round << " i=" << i;
      EXPECT_EQ(std::memcmp(a[i].frame, b[i].frame, ebpf::kFrameSize), 0)
          << "round=" << round << " i=" << i;
    }
    // Advance both clocks so FIN-wait flows expire between rounds and the
    // kExpired re-probe path runs.
    now += config.table.fin_timeout_ns / 2;
    burst_ct.AdvanceTo(now);
    scalar_ct.SetNow(now);  // scalar twin relies on lazy expiry only
  }
  EXPECT_EQ(burst_ct.hits(), scalar_ct.hits());
  EXPECT_EQ(burst_ct.misses(), scalar_ct.misses());
  EXPECT_EQ(burst_ct.created(), scalar_ct.created());
  EXPECT_EQ(burst_ct.torn_down(), scalar_ct.torn_down());
}

// NAT-mode burst equivalence: rewrites (frame bytes) and binding allocation
// order must match the scalar path exactly.
TEST_F(ConntrackNfTest, NatBurstRewritesMatchScalar) {
  ConntrackConfig config;
  config.mode = CtMode::kNat;
  ConntrackEnetstl burst_ct(config);
  ConntrackEnetstl scalar_ct(config);
  const auto flows = pktgen::MakeFlowPopulation(150, 0xbeef);
  pktgen::Rng rng(0x9a7);
  constexpr u32 kBurst = 199;
  for (u32 round = 0; round < 4; ++round) {
    std::vector<pktgen::Packet> a(kBurst), b(kBurst);
    for (u32 i = 0; i < kBurst; ++i) {
      const ebpf::FiveTuple t = flows[rng.NextBounded(flows.size())];
      const u8 flags =
          rng.NextBounded(100) < 5 ? kTcpRst : static_cast<u8>(0);
      a[i] = MakePacket(t, flags);
      b[i] = a[i];
    }
    std::vector<ebpf::XdpContext> ctxs(kBurst);
    for (u32 i = 0; i < kBurst; ++i) {
      ctxs[i] = ebpf::XdpContext{a[i].frame, a[i].frame + ebpf::kFrameSize, 0};
    }
    std::vector<ebpf::XdpAction> verdicts(kBurst, ebpf::XdpAction::kAborted);
    burst_ct.ProcessBurst(ctxs.data(), kBurst, verdicts.data());
    for (u32 i = 0; i < kBurst; ++i) {
      EXPECT_EQ(verdicts[i], RunScalar(scalar_ct, b[i])) << "i=" << i;
      EXPECT_EQ(std::memcmp(a[i].frame, b[i].frame, ebpf::kFrameSize), 0)
          << "i=" << i;
    }
  }
  EXPECT_EQ(burst_ct.created(), scalar_ct.created());
}

// The two engines (BPF-LRU-map model vs arena) must agree packet-for-packet
// while the flow count stays under capacity (above it their documented
// eviction semantics legitimately differ).
TEST_F(ConntrackNfTest, EnginesAgreeUnderCapacityChurn) {
  ConntrackConfig config;
  config.mode = CtMode::kTrack;
  ConntrackEbpf lhs(config);
  ConntrackEnetstl rhs(config);
  const auto flows = pktgen::MakeFlowPopulation(400, 0x5eed);
  pktgen::Rng rng(0xd1ff);
  u64 now = 0;
  for (u32 i = 0; i < 20000; ++i) {
    ebpf::FiveTuple t = flows[rng.NextBounded(flows.size())];
    if (rng.NextBounded(3) == 0) {
      t = FlowTable::ReverseTuple(t);
    }
    u8 flags = 0;
    const u32 r = static_cast<u32>(rng.NextBounded(100));
    if (r < 3) {
      flags = kTcpRst;
    } else if (r < 8) {
      flags = kTcpFin;
    }
    pktgen::Packet pa = MakePacket(t, flags);
    pktgen::Packet pb = pa;
    ASSERT_EQ(RunScalar(lhs, pa), RunScalar(rhs, pb)) << "i=" << i;
    ASSERT_EQ(std::memcmp(pa.frame, pb.frame, ebpf::kFrameSize), 0);
    if (i % 2000 == 1999) {
      now += config.table.fin_timeout_ns;
      lhs.AdvanceTo(now);
      rhs.AdvanceTo(now);  // also sweeps; verdicts must not depend on it
    }
  }
  EXPECT_EQ(lhs.hits(), rhs.hits());
  EXPECT_EQ(lhs.misses(), rhs.misses());
  EXPECT_EQ(lhs.created(), rhs.created());
  EXPECT_EQ(lhs.torn_down(), rhs.torn_down());
}

TEST_F(ConntrackNfTest, FilterModeLowersToFusedKeyOpTrackAndNatDoNot) {
  ConntrackConfig config;
  config.mode = CtMode::kFilter;
  ConntrackEnetstl filter(config);
  // Pre-populate the membership set directly (the control plane's job).
  std::vector<ebpf::FiveTuple> members;
  for (u32 i = 0; i < 32; ++i) {
    members.push_back(TcpFlow(i));
    u32 handle;
    ASSERT_NE(filter.table().Insert(members[i],
                                    FlowTable::ReverseTuple(members[i]), 0,
                                    FlowState::kEstablished, 0, 0, 0, &handle),
              nullptr);
  }
  auto op = filter.LowerToKeyOp();
  ASSERT_TRUE(op.has_value());
  ebpf::FiveTuple keys[64];
  bool out[64] = {};
  u32 n = 0;
  for (u32 i = 0; i < 16; ++i) {
    keys[n++] = members[i];
    keys[n++] = FlowTable::ReverseTuple(members[i]);
    keys[n++] = TcpFlow(500 + i);
  }
  const u64 epoch = filter.table().mutation_epoch();
  op->contains(keys, n, out);
  EXPECT_EQ(filter.table().mutation_epoch(), epoch);  // side-effect free
  for (u32 i = 0; i < n; ++i) {
    pktgen::Packet p = MakePacket(keys[i]);
    const auto verdict = RunScalar(filter, p);
    EXPECT_EQ(out[i], verdict == ebpf::XdpAction::kPass) << "i=" << i;
  }
  // Stateful modes mutate and rewrite — they must not lower.
  ConntrackConfig track_config;
  track_config.mode = CtMode::kTrack;
  ConntrackEnetstl track(track_config);
  EXPECT_FALSE(track.LowerToKeyOp().has_value());
  ConntrackConfig nat_config;
  nat_config.mode = CtMode::kNat;
  ConntrackEnetstl nat(nat_config);
  EXPECT_FALSE(nat.LowerToKeyOp().has_value());
}

TEST_F(ConntrackNfTest, ExportImportPreservesFlowsAcrossVariants) {
  ConntrackConfig config;
  config.mode = CtMode::kNat;
  ConntrackEbpf src(config);
  // Establish 20 NAT'ed flows on the eBPF-model engine.
  std::vector<ebpf::FiveTuple> flows;
  std::vector<u16> nat_ports;
  for (u32 i = 0; i < 20; ++i) {
    flows.push_back(TcpFlow(i));
    pktgen::Packet p = MakePacket(flows[i]);
    ASSERT_EQ(RunScalar(src, p), ebpf::XdpAction::kPass);
    nat_ports.push_back(FrameSrcPort(p));
  }
  std::vector<u8> blob;
  ASSERT_TRUE(src.ExportState(blob));

  // Hot-swap target: the arena engine. Every existing flow must hit with the
  // SAME binding; the binding counter must carry over.
  ConntrackEnetstl dst(config);
  ASSERT_TRUE(dst.ImportState(blob.data(), blob.size()));
  for (u32 i = 0; i < 20; ++i) {
    pktgen::Packet p = MakePacket(flows[i]);
    ASSERT_EQ(RunScalar(dst, p), ebpf::XdpAction::kPass);
    EXPECT_EQ(FrameSrcPort(p), nat_ports[i]) << "i=" << i;
  }
  EXPECT_EQ(dst.created(), 0u);
  EXPECT_EQ(dst.hits(), 20u);
  // A new flow draws the NEXT counter value, not a colliding reused one.
  pktgen::Packet fresh = MakePacket(TcpFlow(900));
  ASSERT_EQ(RunScalar(dst, fresh), ebpf::XdpAction::kPass);
  EXPECT_EQ(FrameSrcPort(fresh), static_cast<u16>(config.nat_port_base + 20));

  // Round-trip the other way (arena -> LRU-map model).
  std::vector<u8> blob2;
  ASSERT_TRUE(dst.ExportState(blob2));
  ConntrackEbpf back(config);
  ASSERT_TRUE(back.ImportState(blob2.data(), blob2.size()));
  for (u32 i = 0; i < 20; ++i) {
    pktgen::Packet p = MakePacket(flows[i]);
    ASSERT_EQ(RunScalar(back, p), ebpf::XdpAction::kPass);
    EXPECT_EQ(FrameSrcPort(p), nat_ports[i]) << "i=" << i;
  }
  EXPECT_EQ(back.created(), 0u);

  // Truncated blobs are rejected.
  ConntrackEnetstl reject(config);
  EXPECT_FALSE(reject.ImportState(blob.data(), blob.size() - 5));
  EXPECT_FALSE(reject.ImportState(blob.data(), 3));
}

}  // namespace
}  // namespace nf
