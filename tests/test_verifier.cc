// Tests for the metadata-assisted verifier model: kfunc registry semantics,
// the rules enforced over program manifests, the runtime reference tracker,
// and the XdpProgram load-then-run lifecycle.
#include "ebpf/verifier.h"

#include <gtest/gtest.h>

#include "core/kfunc_defs.h"
#include "ebpf/program.h"

namespace ebpf {
namespace {

KfuncRegistry MakeTestRegistry() {
  KfuncRegistry reg;
  reg.Register({"acquire_thing", kKfAcquire | kKfRetNull, "thing",
                {ProgramType::kXdp}});
  reg.Register({"release_thing", kKfRelease, "thing", {ProgramType::kXdp}});
  reg.Register({"plain_op", 0, "", {}});  // allowed everywhere
  reg.Register({"tc_only", 0, "", {ProgramType::kTcIngress}});
  return reg;
}

TEST(KfuncRegistry, RegisterAndLookup) {
  KfuncRegistry reg;
  EXPECT_TRUE(reg.Register({"f", 0, "", {}}));
  EXPECT_FALSE(reg.Register({"f", kKfAcquire, "", {}}));  // duplicate ignored
  ASSERT_NE(reg.Lookup("f"), nullptr);
  EXPECT_EQ(reg.Lookup("f")->flags, 0u);  // original wins
  EXPECT_EQ(reg.Lookup("missing"), nullptr);
}

TEST(KfuncRegistry, EnetstlRegistrationIsIdempotent) {
  KfuncRegistry reg;
  const int first = enetstl::RegisterEnetstlKfuncs(reg);
  EXPECT_GT(first, 30);
  EXPECT_EQ(enetstl::RegisterEnetstlKfuncs(reg), 0);
  // Spot-check metadata.
  const KfuncDesc* alloc = reg.Lookup("enetstl_node_alloc");
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->flags & kKfAcquire);
  EXPECT_TRUE(alloc->flags & kKfRetNull);
  EXPECT_EQ(alloc->resource_class, "mw_node");
  const KfuncDesc* release = reg.Lookup("enetstl_node_release");
  ASSERT_NE(release, nullptr);
  EXPECT_TRUE(release->flags & kKfRelease);
}

TEST(Verifier, AcceptsWellFormedProgram) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "good";
  spec.type = ProgramType::kXdp;
  spec.helpers_used = {"bpf_map_lookup_elem", "bpf_get_prandom_u32"};
  spec.kfunc_calls = {{"acquire_thing", /*null_checked=*/true},
                      {"release_thing", false},
                      {"plain_op", false}};
  spec.max_loop_bound = 128;
  const VerifyResult result = verifier.Verify(spec);
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
}

TEST(Verifier, RejectsUnknownHelper) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "bad-helper";
  spec.helpers_used = {"bpf_totally_made_up"};
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsUnknownKfunc) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "bad-kfunc";
  spec.kfunc_calls = {{"nonexistent", true}};
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsMissingNullCheck) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "no-null-check";
  spec.kfunc_calls = {{"acquire_thing", /*null_checked=*/false},
                      {"release_thing", false}};
  const VerifyResult result = verifier.Verify(spec);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.errors[0].find("null check"), std::string::npos);
}

TEST(Verifier, RejectsLeakedReference) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "leak";
  spec.kfunc_calls = {{"acquire_thing", true}};  // never released
  const VerifyResult result = verifier.Verify(spec);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.errors[0].find("unreleased"), std::string::npos);
}

TEST(Verifier, RejectsReleaseWithoutAcquire) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "double-release";
  spec.kfunc_calls = {{"release_thing", false}};
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, BalancedMultipleAcquires) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "balanced";
  spec.kfunc_calls = {{"acquire_thing", true}, {"acquire_thing", true},
                      {"release_thing", false}, {"release_thing", false}};
  EXPECT_TRUE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsWrongProgramType) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "xdp-calling-tc-kfunc";
  spec.type = ProgramType::kXdp;
  spec.kfunc_calls = {{"tc_only", false}};
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsUnboundedLoop) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "unbounded";
  spec.has_unbounded_loop = true;
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsExcessiveInstructionEstimate) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "too-big";
  spec.estimated_insns = Verifier::kMaxInsns + 1;
  EXPECT_FALSE(verifier.Verify(spec).ok);
  spec.estimated_insns = Verifier::kMaxInsns;
  EXPECT_TRUE(verifier.Verify(spec).ok);
}

TEST(Verifier, RejectsExcessiveLoopBound) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "too-long";
  spec.max_loop_bound = Verifier::kMaxLoopBound + 1;
  EXPECT_FALSE(verifier.Verify(spec).ok);
}

TEST(Verifier, CollectsAllErrors) {
  const KfuncRegistry reg = MakeTestRegistry();
  Verifier verifier(reg);
  ProgramSpec spec;
  spec.name = "multi-bad";
  spec.has_unbounded_loop = true;
  spec.helpers_used = {"nope"};
  spec.kfunc_calls = {{"acquire_thing", false}};
  const VerifyResult result = verifier.Verify(spec);
  EXPECT_FALSE(result.ok);
  EXPECT_GE(result.errors.size(), 3u);
}

TEST(RefLeakChecker, TracksAcquireRelease) {
  RefLeakChecker checker;
  int a = 0, b = 0;
  checker.OnAcquire(&a, "node");
  checker.OnAcquire(&b, "node");
  EXPECT_EQ(checker.LiveCount(), 2u);
  EXPECT_TRUE(checker.OnRelease(&a, "node"));
  EXPECT_EQ(checker.LiveCount(), 1u);
  EXPECT_FALSE(checker.OnRelease(&a, "node"));  // double release
  EXPECT_FALSE(checker.OnRelease(&b, "other"));  // wrong class
  EXPECT_EQ(checker.LiveCount("node"), 1u);
  checker.Reset();
  EXPECT_EQ(checker.LiveCount(), 0u);
}

TEST(XdpProgram, RunRequiresSuccessfulLoad) {
  KfuncRegistry reg = MakeTestRegistry();
  ProgramSpec spec;
  spec.name = "prog";
  spec.kfunc_calls = {{"acquire_thing", false}};  // will fail verification
  XdpProgram prog(spec, [](XdpContext&) { return XdpAction::kPass; });
  EXPECT_FALSE(prog.Load(reg).ok);
  u8 frame[kFrameSize] = {};
  XdpContext ctx{frame, frame + kFrameSize, 0};
  EXPECT_THROW(prog.Run(ctx), std::logic_error);
}

TEST(XdpProgram, LoadedProgramRuns) {
  KfuncRegistry reg = MakeTestRegistry();
  ProgramSpec spec;
  spec.name = "ok-prog";
  spec.helpers_used = {"bpf_map_lookup_elem"};
  XdpProgram prog(spec, [](XdpContext& ctx) {
    FiveTuple t;
    return ParseFiveTuple(ctx, &t) ? XdpAction::kPass : XdpAction::kDrop;
  });
  ASSERT_TRUE(prog.Load(reg).ok);
  FiveTuple tuple;
  tuple.src_ip = 0x0a000001;
  tuple.protocol = 17;
  u8 frame[kFrameSize];
  BuildFrame(tuple, frame);
  XdpContext ctx{frame, frame + kFrameSize, 0};
  EXPECT_EQ(prog.Run(ctx), XdpAction::kPass);
}

TEST(FrameFormat, BuildParseRoundTrip) {
  FiveTuple tuple;
  tuple.src_ip = 0xc0a80101;
  tuple.dst_ip = 0x08080808;
  tuple.src_port = 12345;
  tuple.dst_port = 443;
  tuple.protocol = 6;
  u8 frame[kFrameSize];
  BuildFrame(tuple, frame);
  XdpContext ctx{frame, frame + kFrameSize, 0};
  FiveTuple parsed;
  ASSERT_TRUE(ParseFiveTuple(ctx, &parsed));
  EXPECT_EQ(parsed, tuple);
}

TEST(FrameFormat, TruncatedFrameRejected) {
  FiveTuple tuple;
  u8 frame[kFrameSize];
  BuildFrame(tuple, frame);
  XdpContext ctx{frame, frame + 20, 0};  // too short
  FiveTuple parsed;
  EXPECT_FALSE(ParseFiveTuple(ctx, &parsed));
}

TEST(FrameFormat, NonIpv4Rejected) {
  u8 frame[kFrameSize] = {};  // ethertype 0
  XdpContext ctx{frame, frame + kFrameSize, 0};
  FiveTuple parsed;
  EXPECT_FALSE(ParseFiveTuple(ctx, &parsed));
}

}  // namespace
}  // namespace ebpf
