// Table 1: the feasibility / degradation matrix. The paper surveys 35 works;
// this harness reproduces the measurement over the 11 implemented
// representatives: for each NF, whether a pure-eBPF implementation exists
// (P1) and, when it does, its throughput degradation versus the in-kernel
// implementation (P2, reported at 14.8%-49.2% in the paper).
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  std::string only;
  if (const int code = bench::HandleRegistryArgs(&argc, argv, &only);
      code >= 0) {
    return code;
  }
  bench::PrintHeader(
      "Table 1: eBPF feasibility and degradation vs in-kernel baseline");
  std::printf("%-16s %-22s %12s %16s\n", "nf", "category", "eBPF?",
              "degradation(%)");
  auto roster = nf::MakeBenchRoster();
  const auto pipeline = bench::MakePipeline();
  double worst = 0, best = 1e9;
  for (auto& setup : roster) {
    if (!only.empty() && setup.name != only) {
      continue;
    }
    const double k =
        pipeline.MeasureThroughput(setup.kernel->Handler(), setup.trace).pps;
    if (!setup.ebpf) {
      std::printf("%-16s %-22s %12s %16s\n", setup.name.c_str(),
                  setup.category.c_str(), "x (P1)", "-");
      continue;
    }
    const double e =
        pipeline.MeasureThroughput(setup.ebpf->Handler(), setup.trace).pps;
    const double degradation = (k - e) / k * 100.0;
    worst = degradation > worst ? degradation : worst;
    best = degradation < best ? degradation : best;
    std::printf("%-16s %-22s %12s %15.1f%%\n", setup.name.c_str(),
                setup.category.c_str(), "degraded (P2)", degradation);
  }
  // The other two NFs the paper marks x: implemented in this repository on
  // the memory wrapper (see bench_p1_enabled), still absent from eBPF.
  std::printf("%-16s %-22s %12s %16s\n", "space-saving", "counting", "x (P1)",
              "-");
  std::printf("%-16s %-22s %12s %16s\n", "fq-pacer", "queuing", "x (P1)",
              "-");
  std::printf(
      "-- measured degradation range: %.1f%% .. %.1f%% (paper: 14.8%% .. "
      "49.2%%); 3 NFs infeasible (paper: 3 of 35)\n",
      best, worst);
  return 0;
}
