// Figure 4: per-packet latency of the NFs under low offered load (the paper
// sends 1 kpps and measures end-to-end latency; here we measure per-packet
// handler latency percentiles directly). The claim to reproduce: eNetSTL
// does NOT increase latency relative to pure eBPF — there is no batching.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  std::string only;
  if (const int code = bench::HandleRegistryArgs(&argc, argv, &only);
      code >= 0) {
    return code;
  }
  bench::PrintHeader("Figure 4: NF latency under low load (p50/p99 ns)");
  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "nf", "eBPF p50",
              "eBPF p99", "Kern p50", "Kern p99", "STL p50", "STL p99");
  auto roster = nf::MakeBenchRoster();
  pktgen::Pipeline pipeline;
  constexpr bench::u64 kPackets = 20000;
  for (auto& setup : roster) {
    if (!only.empty() && setup.name != only) {
      continue;
    }
    pktgen::LatencyStats e{}, k{}, s{};
    if (setup.ebpf) {
      e = pipeline.MeasureLatency(setup.ebpf->Handler(), setup.trace, kPackets);
    }
    k = pipeline.MeasureLatency(setup.kernel->Handler(), setup.trace, kPackets);
    s = pipeline.MeasureLatency(setup.enetstl->Handler(), setup.trace, kPackets);
    std::printf("%-16s %10.0f %10.0f %10.0f %10.0f %10.0f %10.0f\n",
                setup.name.c_str(), e.p50_ns, e.p99_ns, k.p50_ns, k.p99_ns,
                s.p50_ns, s.p99_ns);
  }
  std::printf(
      "-- expectation (paper): eNetSTL latency <= eBPF latency per NF; no "
      "batching-induced inflation\n");
  return 0;
}
