// Tests for the Eiffel cFFS priority queue: strict min-priority dequeue
// order, FIFO within a priority, hierarchical bitmap maintenance across all
// level configurations, and cross-variant equivalence (the structure is
// identical; only the FFS primitive differs).
#include "nf/eiffel.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "ebpf/program.h"
#include "pktgen/flowgen.h"

namespace nf {
namespace {

enum class Kind { kEbpf, kKernel, kEnetstl };

std::unique_ptr<EiffelBase> Make(Kind kind, const EiffelConfig& config) {
  switch (kind) {
    case Kind::kEbpf:
      return std::make_unique<EiffelEbpf>(config);
    case Kind::kKernel:
      return std::make_unique<EiffelKernel>(config);
    case Kind::kEnetstl:
      return std::make_unique<EiffelEnetstl>(config);
  }
  return nullptr;
}

using KindLevels = std::tuple<Kind, u32>;

class EiffelAll : public ::testing::TestWithParam<KindLevels> {};

TEST_P(EiffelAll, EmptyDequeueFails) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto q = Make(std::get<0>(GetParam()), config);
  EiffelItem item;
  EXPECT_FALSE(q->DequeueMin(&item));
  EXPECT_EQ(q->size(), 0u);
}

TEST_P(EiffelAll, DequeuesInPriorityOrder) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto q = Make(std::get<0>(GetParam()), config);
  const u32 p_max = q->num_priorities();
  const u32 prios[] = {p_max - 1, 0, p_max / 2, 1, p_max / 3};
  for (u32 p : prios) {
    ASSERT_TRUE(q->Enqueue({p, p * 10}));
  }
  u32 last = 0;
  for (std::size_t i = 0; i < std::size(prios); ++i) {
    EiffelItem item;
    ASSERT_TRUE(q->DequeueMin(&item));
    EXPECT_GE(item.priority, last);
    EXPECT_EQ(item.flow, item.priority * 10);
    last = item.priority;
  }
}

TEST_P(EiffelAll, FifoWithinSamePriority) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto q = Make(std::get<0>(GetParam()), config);
  for (u32 i = 0; i < 5; ++i) {
    ASSERT_TRUE(q->Enqueue({7, i}));
  }
  for (u32 i = 0; i < 5; ++i) {
    EiffelItem item;
    ASSERT_TRUE(q->DequeueMin(&item));
    EXPECT_EQ(item.priority, 7u);
    EXPECT_EQ(item.flow, i);
  }
}

TEST_P(EiffelAll, RejectsOutOfRangePriority) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto q = Make(std::get<0>(GetParam()), config);
  EXPECT_FALSE(q->Enqueue({q->num_priorities(), 1}));
}

TEST_P(EiffelAll, BitmapClearedWhenBucketDrains) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto q = Make(std::get<0>(GetParam()), config);
  ASSERT_TRUE(q->Enqueue({5, 1}));
  EiffelItem item;
  ASSERT_TRUE(q->DequeueMin(&item));
  // Queue must be truly empty: next dequeue fails rather than spinning on a
  // stale bitmap bit.
  EXPECT_FALSE(q->DequeueMin(&item));
  // And a later priority works.
  ASSERT_TRUE(q->Enqueue({11, 2}));
  ASSERT_TRUE(q->DequeueMin(&item));
  EXPECT_EQ(item.priority, 11u);
}

TEST_P(EiffelAll, MatchesReferencePriorityQueue) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  config.capacity = 4096;
  auto q = Make(std::get<0>(GetParam()), config);
  // Reference: map priority -> FIFO.
  std::map<u32, std::queue<u32>> model;
  std::size_t model_size = 0;
  pktgen::Rng rng(606 + config.levels);
  for (int step = 0; step < 20000; ++step) {
    if (rng.NextBounded(2) == 0) {
      const u32 prio = static_cast<u32>(rng.NextBounded(q->num_priorities()));
      const u32 flow = static_cast<u32>(step);
      if (q->Enqueue({prio, flow})) {
        model[prio].push(flow);
        ++model_size;
      } else {
        ASSERT_EQ(model_size, 4096u);
      }
    } else {
      EiffelItem item;
      const bool ok = q->DequeueMin(&item);
      ASSERT_EQ(ok, model_size > 0);
      if (ok) {
        auto it = model.begin();
        ASSERT_EQ(item.priority, it->first);
        ASSERT_EQ(item.flow, it->second.front());
        it->second.pop();
        if (it->second.empty()) {
          model.erase(it);
        }
        --model_size;
      }
    }
    ASSERT_EQ(q->size(), model_size);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndLevels, EiffelAll,
    ::testing::Combine(::testing::Values(Kind::kEbpf, Kind::kKernel,
                                         Kind::kEnetstl),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& info) {
      const char* kind = std::get<0>(info.param) == Kind::kEbpf ? "eBPF"
                         : std::get<0>(info.param) == Kind::kKernel
                             ? "Kernel"
                             : "eNetSTL";
      return std::string(kind) + "_L" + std::to_string(std::get<1>(info.param));
    });

// DequeueMinBatch must pop exactly the sequence repeated DequeueMin would:
// same items, same order, same final size — including batches that span
// several priority buckets and batches larger than the queue.
TEST_P(EiffelAll, DequeueMinBatchMatchesScalarDequeue) {
  EiffelConfig config;
  config.levels = std::get<1>(GetParam());
  auto batch_q = Make(std::get<0>(GetParam()), config);
  auto scalar_q = Make(std::get<0>(GetParam()), config);

  pktgen::Rng rng(777);
  for (int i = 0; i < 500; ++i) {
    EiffelItem item;
    item.priority = static_cast<u32>(rng.NextBounded(batch_q->num_priorities()));
    item.flow = rng.NextU32();
    ASSERT_TRUE(batch_q->Enqueue(item));
    ASSERT_TRUE(scalar_q->Enqueue(item));
  }

  // Drain in uneven chunks so batches split and span buckets arbitrarily.
  const u32 chunks[] = {1, 7, 64, 3, 200, 500};
  for (const u32 chunk : chunks) {
    std::vector<EiffelItem> out(chunk);
    const u32 got = batch_q->DequeueMinBatch(out.data(), chunk);
    for (u32 i = 0; i < chunk; ++i) {
      EiffelItem ref;
      const bool have = scalar_q->DequeueMin(&ref);
      if (i < got) {
        ASSERT_TRUE(have);
        ASSERT_EQ(out[i].priority, ref.priority);
        ASSERT_EQ(out[i].flow, ref.flow);
      } else {
        ASSERT_FALSE(have);
      }
    }
    ASSERT_EQ(batch_q->size(), scalar_q->size());
  }
  EXPECT_EQ(batch_q->size(), 0u);

  // Refill after a full drain: the freelists must have recycled identically.
  for (int i = 0; i < 50; ++i) {
    EiffelItem item;
    item.priority = static_cast<u32>(rng.NextBounded(batch_q->num_priorities()));
    item.flow = rng.NextU32();
    ASSERT_TRUE(batch_q->Enqueue(item));
    ASSERT_TRUE(scalar_q->Enqueue(item));
  }
  std::vector<EiffelItem> out(64);
  const u32 got = batch_q->DequeueMinBatch(out.data(), 64);
  ASSERT_EQ(got, 50u);
  for (u32 i = 0; i < got; ++i) {
    EiffelItem ref;
    ASSERT_TRUE(scalar_q->DequeueMin(&ref));
    ASSERT_EQ(out[i].priority, ref.priority);
    ASSERT_EQ(out[i].flow, ref.flow);
  }
}

// ProcessBurst must terminate and match per-packet Process verdicts for
// every op word, not just the generator's 0/1: scalar Process treats any
// op != 1 as a dequeue, and the burst gather loop must consume those packets
// too. Regression test: an op==2 packet used to make the gather break with
// m == 0, hanging the loop without ever advancing i.
TEST(EiffelBurst, ArbitraryOpWordsMatchScalarAndTerminate) {
  const auto flows = pktgen::MakeFlowPopulation(16, 321);
  // Mix of enqueue (1), dequeue (0), arbitrary non-enqueue ops (2, 0xdead),
  // and an unparseable frame.
  const u32 ops[] = {1, 1, 2, 0, 0xdead, 1, 2, 2, 0, 1, 0, 2};
  const u32 n = static_cast<u32>(std::size(ops));
  std::vector<pktgen::Packet> trace(n);
  for (u32 i = 0; i < n; ++i) {
    ebpf::BuildFrame(flows[i % flows.size()], trace[i].frame);
    std::memcpy(trace[i].frame + ebpf::kL4HeaderOffset + 8, &ops[i], 4);
    const u32 prio = i;
    std::memcpy(trace[i].frame + ebpf::kL4HeaderOffset + 12, &prio, 4);
  }
  trace[4].frame[12] = 0x86;  // corrupt ethertype: parse fails
  trace[4].frame[13] = 0xdd;

  EiffelConfig config;
  EiffelEnetstl burst_q(config);
  EiffelEnetstl scalar_q(config);

  auto trace_b = trace;
  std::vector<ebpf::XdpContext> ctxs(n);
  for (u32 i = 0; i < n; ++i) {
    ctxs[i] = ebpf::XdpContext{trace[i].frame,
                               trace[i].frame + ebpf::kFrameSize, 0};
  }
  std::vector<ebpf::XdpAction> verdicts(n, ebpf::XdpAction::kPass);
  burst_q.ProcessBurst(ctxs.data(), n, verdicts.data());

  for (u32 i = 0; i < n; ++i) {
    ebpf::XdpContext ctx{trace_b[i].frame, trace_b[i].frame + ebpf::kFrameSize,
                         0};
    EXPECT_EQ(verdicts[i], scalar_q.Process(ctx)) << "i=" << i;
  }
  EXPECT_EQ(burst_q.size(), scalar_q.size());
}

TEST(EiffelConfigTest, PriorityCountsGrowGeometrically) {
  EiffelConfig c1{1, 16};
  EiffelConfig c2{2, 16};
  EiffelConfig c3{3, 16};
  EiffelKernel q1(c1), q2(c2), q3(c3);
  EXPECT_EQ(q1.num_priorities(), 64u);
  EXPECT_EQ(q2.num_priorities(), 4096u);
  EXPECT_EQ(q3.num_priorities(), 262144u);
}

}  // namespace
}  // namespace nf
