#include "core/memory_wrapper.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>

#include "core/fault_injector.h"

namespace enetstl {

namespace {

// Caps keeping a single allocation sane; real kfuncs validate constant args
// via __k annotations, this is the runtime equivalent.
constexpr u32 kMaxSlots = 64;
constexpr u32 kMaxDataSize = 64 * 1024;

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace

NodeProxy::NodeProxy(CheckMode mode) : mode_(mode) {}

NodeProxy::~NodeProxy() {
  // Destroy all still-owned nodes. Owned nodes hold exactly the proxy's
  // reference once programs have released theirs; force-destroy regardless so
  // teardown cannot leak (mirrors BPF map destruction releasing kptrs).
  // Collect first: Destroy frees slots, which would corrupt a live iteration.
  std::vector<Node*> owned;
  arena_.ForEachLive([&](void* slot) {
    Node* node = static_cast<Node*>(slot);
    if (node->owner == this) {
      owned.push_back(node);
    }
  });
  for (Node* node : oversize_live_) {
    if (node->owner == this) {
      owned.push_back(node);
    }
  }
  for (Node* node : owned) {
    Destroy(node);
  }
  // Unowned leftovers in the arena are reclaimed with the slabs; unowned
  // oversize leftovers (a program leak) are swept here too. Slab teardown
  // never runs ~Node or touches live_nodes_, which is only sound while Node
  // has nothing to destroy.
  static_assert(std::is_trivially_destructible_v<Node>);
  std::vector<Node*> leftover(oversize_live_.begin(), oversize_live_.end());
  for (Node* node : leftover) {
    Destroy(node);
  }
  for (auto& [size, blocks] : freelists_) {
    for (void* block : blocks) {
      ::operator delete(block, std::align_val_t{alignof(Node)});
    }
  }
}

std::size_t NodeProxy::BlockSize(u32 num_outs, u32 num_ins, u32 data_size) {
  std::size_t size = sizeof(Node);
  size += static_cast<std::size_t>(num_outs) * sizeof(Node*);
  size += static_cast<std::size_t>(num_ins) * sizeof(Node::InEdge);
  size += data_size;
  // Round to 16 so size classes coalesce.
  return (size + 15) & ~static_cast<std::size_t>(15);
}

u64 NodeProxy::ShapeKey(u32 num_outs, u32 num_ins, u32 data_size) {
  // data_size <= 64 KiB (17 bits), slot counts <= 64 (7 bits each).
  return static_cast<u64>(data_size) | (static_cast<u64>(num_ins) << 20) |
         (static_cast<u64>(num_outs) << 28);
}

u64 NodeProxy::EdgeKey(const Node* from, u32 out_idx) {
  return reinterpret_cast<u64>(from) ^ (static_cast<u64>(out_idx) << 48);
}

void* NodeProxy::AllocBlock(std::size_t size) {
  auto it = freelists_.find(size);
  if (it != freelists_.end() && !it->second.empty()) {
    void* block = it->second.back();
    it->second.pop_back();
    freed_bytes_held_ -= size;
    return block;
  }
  return ::operator new(size, std::align_val_t{alignof(Node)}, std::nothrow);
}

void NodeProxy::FreeBlock(void* block, std::size_t size) {
  if (freed_bytes_held_ + size > kMaxCachedBytes) {
    ::operator delete(block, std::align_val_t{alignof(Node)});
    return;
  }
  freelists_[size].push_back(block);
  freed_bytes_held_ += size;
}

ENETSTL_NOINLINE Node* NodeProxy::NodeAlloc(u32 num_outs, u32 num_ins,
                                            u32 data_size) {
  ebpf::CompilerBarrier();
  if (num_outs > kMaxSlots || num_ins > kMaxSlots || data_size > kMaxDataSize) {
    return nullptr;
  }
  if (alloc_fail_countdown_ >= 0 && alloc_fail_countdown_-- == 0) {
    return nullptr;  // injected bpf_obj_new failure (legacy one-shot hook)
  }
  if (FaultInjector::Global().ShouldFail("mem.node_alloc")) {
    return nullptr;  // injected bpf_obj_new failure (scheduled)
  }
  const std::size_t size = BlockSize(num_outs, num_ins, data_size);
  void* block = nullptr;
  u32 self = SlabArena::kNullHandle;
  if (arena_.Slabbable(size)) {
    const SlabArena::Allocation a =
        arena_.Allocate(ShapeKey(num_outs, num_ins, data_size), size);
    block = a.ptr;
    self = a.handle;
  } else {
    block = AllocBlock(size);
  }
  if (block == nullptr) {
    return nullptr;
  }
  Node* node = new (block) Node();
  node->refcount = 1;
  node->num_outs = num_outs;
  node->num_ins = num_ins;
  node->data_size = data_size;
  node->self = self;
  node->owner = nullptr;
  for (u32 i = 0; i < num_outs; ++i) {
    node->outs()[i] = nullptr;
  }
  for (u32 i = 0; i < num_ins; ++i) {
    node->ins()[i] = Node::InEdge{};
  }
  std::memset(node->data(), 0, data_size);
  if (self == SlabArena::kNullHandle) {
    oversize_live_.insert(node);
  }
  ++live_nodes_;
  return node;
}

ENETSTL_NOINLINE void NodeProxy::SetOwner(Node* node) {
  ebpf::CompilerBarrier();
  if (node == nullptr || node->owner == this) {
    return;
  }
  node->owner = this;
  ++owned_nodes_;
  ++node->refcount;
}

ENETSTL_NOINLINE void NodeProxy::UnsetOwner(Node* node) {
  ebpf::CompilerBarrier();
  if (node == nullptr || node->owner != this) {
    return;
  }
  node->owner = nullptr;
  --owned_nodes_;
  NodeRelease(node);
}

ENETSTL_NOINLINE int NodeProxy::NodeConnect(Node* from, u32 out_idx, Node* to,
                                            u32 in_idx) {
  ebpf::CompilerBarrier();
  if (from == nullptr || to == nullptr || out_idx >= from->num_outs ||
      in_idx >= to->num_ins) {
    return ebpf::kErrInval;
  }
  // Clear whatever occupied either endpoint so reverse edges stay exact.
  if (from->outs()[out_idx] != nullptr) {
    NodeDisconnect(from, out_idx);
  }
  Node::InEdge& in = to->ins()[in_idx];
  if (in.from != nullptr) {
    // The old upstream still points at `to`; sever that edge completely.
    NodeDisconnect(in.from, in.out_idx);
  }
  from->outs()[out_idx] = to;
  to->ins()[in_idx] = Node::InEdge{from, out_idx};
  if (mode_ == CheckMode::kEager) {
    valid_edges_.insert(EdgeKey(from, out_idx));
  }
  return ebpf::kOk;
}

ENETSTL_NOINLINE int NodeProxy::NodeDisconnect(Node* from, u32 out_idx) {
  ebpf::CompilerBarrier();
  if (from == nullptr || out_idx >= from->num_outs) {
    return ebpf::kErrInval;
  }
  Node* to = from->outs()[out_idx];
  if (to == nullptr) {
    return ebpf::kOk;
  }
  from->outs()[out_idx] = nullptr;
  for (u32 i = 0; i < to->num_ins; ++i) {
    Node::InEdge& in = to->ins()[i];
    if (in.from == from && in.out_idx == out_idx) {
      in = Node::InEdge{};
      break;
    }
  }
  if (mode_ == CheckMode::kEager) {
    valid_edges_.erase(EdgeKey(from, out_idx));
  }
  return ebpf::kOk;
}

ENETSTL_NOINLINE Node* NodeProxy::GetNext(Node* node, u32 out_idx) {
  ebpf::CompilerBarrier();
  if (node == nullptr || out_idx >= node->num_outs) {
    return nullptr;
  }
  if (mode_ == CheckMode::kEager) {
    // Ablation path: validate the relationship before following it.
    if (valid_edges_.find(EdgeKey(node, out_idx)) == valid_edges_.end()) {
      return nullptr;
    }
  }
  Node* next = node->outs()[out_idx];
  if (next == nullptr) {
    return nullptr;
  }
  ++next->refcount;
  return next;
}

ENETSTL_NOINLINE void NodeProxy::GetNextBatch(Node* const* nodes,
                                              const u32* out_idxs, u32 n,
                                              Node** out) {
  ebpf::CompilerBarrier();
  // Stage 1: resolve every target and prefetch it. The header line covers
  // refcount + out-slot array starts; the following two lines cover the
  // in-edge slots and the key-bearing start of the payload for the node
  // shapes the pointer-based NFs use (skip-list heights <= 7 keep the key
  // within three lines; taller nodes are geometrically rare).
  for (u32 i = 0; i < n; ++i) {
    Node* node = nodes[i];
    Node* next = nullptr;
    if (node != nullptr && out_idxs[i] < node->num_outs) {
      if (mode_ != CheckMode::kEager ||
          valid_edges_.find(EdgeKey(node, out_idxs[i])) != valid_edges_.end()) {
        next = node->outs()[out_idxs[i]];
      }
    }
    out[i] = next;
    if (next != nullptr) {
      const u8* p = reinterpret_cast<const u8*>(next);
      PrefetchRead(p);
      PrefetchRead(p + 64);
      PrefetchRead(p + 128);
    }
  }
  // Stage 2: take the references, by which time the prefetches have landed.
  for (u32 i = 0; i < n; ++i) {
    if (out[i] != nullptr) {
      ++out[i]->refcount;
    }
  }
}

ENETSTL_NOINLINE Node* NodeProxy::NodeAcquire(Node* node) {
  ebpf::CompilerBarrier();
  if (node == nullptr) {
    return nullptr;
  }
  ++node->refcount;
  return node;
}

ENETSTL_NOINLINE void NodeProxy::NodeRelease(Node* node) {
  ebpf::CompilerBarrier();
  if (node == nullptr || node->refcount == 0) {
    return;
  }
  if (--node->refcount == 0) {
    Destroy(node);
  }
}

void NodeProxy::Destroy(Node* node) {
  // Lazy safety checking: every out-pointer still targeting this node is
  // nulled using the recorded reverse edges, so no dangling pointer survives.
  for (u32 i = 0; i < node->num_ins; ++i) {
    Node::InEdge& in = node->ins()[i];
    if (in.from != nullptr && in.from != node) {
      if (in.out_idx < in.from->num_outs && in.from->outs()[in.out_idx] == node) {
        in.from->outs()[in.out_idx] = nullptr;
        if (mode_ == CheckMode::kEager) {
          valid_edges_.erase(EdgeKey(in.from, in.out_idx));
        }
      }
      in = Node::InEdge{};
    }
  }
  // Drop this node's own outgoing edges from the targets' in-slots.
  for (u32 i = 0; i < node->num_outs; ++i) {
    Node* to = node->outs()[i];
    if (to == nullptr || to == node) {
      continue;
    }
    for (u32 j = 0; j < to->num_ins; ++j) {
      Node::InEdge& in = to->ins()[j];
      if (in.from == node && in.out_idx == i) {
        in = Node::InEdge{};
        break;
      }
    }
    if (mode_ == CheckMode::kEager) {
      valid_edges_.erase(EdgeKey(node, i));
    }
  }
  if (node->owner == this) {
    --owned_nodes_;
    node->owner = nullptr;
  }
  const u32 self = node->self;
  const std::size_t size =
      BlockSize(node->num_outs, node->num_ins, node->data_size);
  node->~Node();
  if (self != SlabArena::kNullHandle) {
    arena_.Free(self);
  } else {
    oversize_live_.erase(node);
    FreeBlock(node, size);
  }
  --live_nodes_;
}

ENETSTL_NOINLINE int NodeProxy::NodeWrite(Node* node, u32 off, const void* src,
                                          u32 size) {
  ebpf::CompilerBarrier();
  if (node == nullptr || off > node->data_size || size > node->data_size - off) {
    return ebpf::kErrInval;
  }
  std::memcpy(node->data() + off, src, size);
  return ebpf::kOk;
}

ENETSTL_NOINLINE int NodeProxy::NodeRead(const Node* node, u32 off, void* dst,
                                         u32 size) {
  ebpf::CompilerBarrier();
  if (node == nullptr || off > node->data_size || size > node->data_size - off) {
    return ebpf::kErrInval;
  }
  std::memcpy(dst, node->data() + off, size);
  return ebpf::kOk;
}

}  // namespace enetstl
