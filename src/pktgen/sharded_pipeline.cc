#include "pktgen/sharded_pipeline.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "core/fault_injector.h"
#include "core/hash.h"
#include "core/hash_inl.h"
#include "ebpf/helper.h"
#include "obs/telemetry.h"
#include "pktgen/flow_migration.h"

#if defined(__linux__)
#include <time.h>
#endif

namespace pktgen {

namespace {

using WallClock = std::chrono::steady_clock;

// CPU time consumed by the calling thread. Falls back to wall time on
// platforms without per-thread clocks (the dedicated-core model then degrades
// to wall-clock scaling).
double ThreadCpuSeconds() {
#if defined(__linux__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
  }
#endif
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             WallClock::now().time_since_epoch())
      .count();
}

inline ebpf::XdpContext MakeContext(Packet& packet) {
  ebpf::XdpContext ctx;
  ctx.data = packet.frame;
  ctx.data_end = packet.frame + ebpf::kFrameSize;
  ctx.rx_timestamp_ns = 0;
  return ctx;
}

struct WorkerTask {
  u32 cpu = 0;
  u32 burst = 1;
  u64 warmup_packets = 0;
  u64 measure_packets = 0;
  Trace queue;  // this worker's steered sub-trace (owned, mutated in place)
  ShardedPipeline::BurstHandler handler;
  // Fault point probed once per measured burst; empty disables the probe
  // (failover replay tasks run fault-free — one failover round per run).
  std::string kill_point;

  double busy_seconds = 0.0;
  ThroughputStats stats;
  bool failed = false;

  void Run() {
    ebpf::SetCurrentCpu(cpu);
    if (queue.empty() || !handler) {
      return;
    }
    // Defensive re-clamp: callers clamp burst already, but a zero or
    // oversized burst here would spin forever / overrun the stack scratch.
    const u32 b = std::clamp(burst, u32{1}, kMaxBurstSize);
    const std::size_t n = queue.size();
    ebpf::XdpContext ctxs[kMaxBurstSize];
    ebpf::XdpAction verdicts[kMaxBurstSize];
    std::size_t cursor = 0;
    auto fill_burst = [&](u32 count) {
      for (u32 i = 0; i < count; ++i) {
        ctxs[i] = MakeContext(queue[cursor]);
        cursor = cursor + 1 < n ? cursor + 1 : 0;
      }
    };

    // Per-shard telemetry scope; the whole-burst latency complements the
    // per-stage scopes a chain program registers itself. When telemetry is
    // disabled the measured loop runs the handler with no extra clock reads.
    ebpf::u16 obs_scope = obs::kInvalidScope;
    if constexpr (obs::kCompiledIn) {
      obs_scope =
          obs::Telemetry::Global().RegisterScope("shard/" + std::to_string(cpu));
    }
    auto run_burst = [&](u32 count) {
      if constexpr (obs::kCompiledIn) {
        obs::Telemetry& telemetry = obs::Telemetry::Global();
        if (telemetry.enabled()) {
          const u64 h0 = ebpf::helpers::BpfKtimeGetNs();
          handler(ctxs, count, verdicts);
          telemetry.RecordBurst(obs_scope,
                                ebpf::helpers::BpfKtimeGetNs() - h0, count,
                                [&](u32 i) { return obs::FlowOf(ctxs[i]); });
          return;
        }
      }
      handler(ctxs, count, verdicts);
    };

    for (u64 done = 0; done < warmup_packets;) {
      const u32 count =
          static_cast<u32>(std::min<u64>(b, warmup_packets - done));
      fill_burst(count);
      handler(ctxs, count, verdicts);
      done += count;
    }

    u64 done = 0;
    const double t0 = ThreadCpuSeconds();
    while (done < measure_packets) {
      if (!kill_point.empty() &&
          enetstl::FaultInjector::Global().ShouldFail(kill_point)) {
        failed = true;  // shard dies mid-measurement; drained by failover
        break;
      }
      const u32 count =
          static_cast<u32>(std::min<u64>(b, measure_packets - done));
      fill_burst(count);
      run_burst(count);
      for (u32 i = 0; i < count; ++i) {
        stats.AccumulateVerdict(verdicts[i]);
      }
      done += count;
    }
    busy_seconds = ThreadCpuSeconds() - t0;

    stats.packets = done;  // actual count: short of the quota if killed
    stats.seconds = busy_seconds;
    if (busy_seconds > 0.0 && done > 0) {
      stats.pps = static_cast<double>(stats.packets) / busy_seconds;
      stats.ns_per_packet =
          busy_seconds * 1e9 / static_cast<double>(stats.packets);
    }
  }
};

}  // namespace

u32 RssQueueForTuple(const ebpf::FiveTuple& tuple, u32 num_queues, u32 seed) {
  if (num_queues <= 1) {
    return 0;
  }
  return enetstl::internal::HwHashCrcImpl(&tuple, sizeof(tuple), seed) %
         num_queues;
}

u32 RssQueueForPacket(const Packet& packet, u32 num_queues, u32 seed) {
  ebpf::XdpContext ctx;
  ctx.data = const_cast<u8*>(packet.frame);
  ctx.data_end = const_cast<u8*>(packet.frame) + ebpf::kFrameSize;
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return 0;
  }
  return RssQueueForTuple(tuple, num_queues, seed);
}

std::vector<u32> BuildRssIndirection(u32 num_queues) {
  std::vector<u32> table(kRssIndirectionSize, 0);
  if (num_queues == 0) {
    return table;
  }
  for (u32 i = 0; i < kRssIndirectionSize; ++i) {
    table[i] = i % num_queues;
  }
  return table;
}

void RebuildRssIndirection(std::vector<u32>& table,
                           const std::vector<bool>& alive,
                           const std::vector<u64>& queue_depths) {
  bool any_alive = false;
  u64 total_depth = 0;
  std::vector<u64> load(alive.size(), 0);
  for (u32 q = 0; q < alive.size(); ++q) {
    if (alive[q]) {
      any_alive = true;
      if (q < queue_depths.size()) {
        load[q] = queue_depths[q];
        total_depth += queue_depths[q];
      }
    } else if (q < queue_depths.size()) {
      total_depth += queue_depths[q];
    }
  }
  if (!any_alive || table.empty()) {
    return;
  }
  // A slot's estimated share of the offered load; >= 1 so the depth-blind
  // variant still spreads orphans evenly instead of piling them on one
  // survivor.
  const u64 slot_share =
      std::max<u64>(1, total_depth / static_cast<u64>(table.size()));
  for (u32& q : table) {
    if (q < alive.size() && alive[q]) {
      continue;  // live flows keep their affinity
    }
    const u32 target = ChooseLeastLoadedQueue(alive, load);
    q = target;
    load[target] += slot_share;
  }
}

void RebuildRssIndirection(std::vector<u32>& table,
                           const std::vector<bool>& alive) {
  RebuildRssIndirection(table, alive, {});
}

namespace {

// CRC32 with the seed as init value is affine in the seed: over fixed-length
// keys, two seeds differ by one constant XOR on every hash, so `% table_size`
// only relabels slots — which flows COLLIDE never changes. Real RSS re-keying
// repartitions flows; a multiplicative finalizer (murmur3 fmix32) breaks the
// GF(2) linearity and restores that.
u32 RssFlowHash(const ebpf::FiveTuple& tuple, u32 seed) {
  u32 h = enetstl::internal::HwHashCrcImpl(&tuple, sizeof(tuple), seed);
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  h *= 0xc2b2ae35u;
  h ^= h >> 16;
  return h;
}

}  // namespace

u32 RssQueueViaIndirection(const ebpf::FiveTuple& tuple,
                           const std::vector<u32>& table, u32 seed) {
  if (table.empty()) {
    return 0;
  }
  const u32 slot = RssFlowHash(tuple, seed) % static_cast<u32>(table.size());
  return table[slot];
}

u32 RssQueueForPacketViaIndirection(const Packet& packet,
                                    const std::vector<u32>& table, u32 seed) {
  ebpf::XdpContext ctx;
  ctx.data = const_cast<u8*>(packet.frame);
  ctx.data_end = const_cast<u8*>(packet.frame) + ebpf::kFrameSize;
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return table.empty() ? 0 : table[0];
  }
  return RssQueueViaIndirection(tuple, table, seed);
}

u32 RssSlotForPacket(const Packet& packet, u32 table_size, u32 seed) {
  if (table_size <= 1) {
    return 0;
  }
  ebpf::XdpContext ctx;
  ctx.data = const_cast<u8*>(packet.frame);
  ctx.data_end = const_cast<u8*>(packet.frame) + ebpf::kFrameSize;
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return 0;
  }
  return RssFlowHash(tuple, seed) % table_size;
}

std::vector<ShardedPipeline::StageBreakdown> MergeStageBreakdowns(
    const std::vector<ShardedPipeline::ShardStats>& shards) {
  std::vector<ShardedPipeline::StageBreakdown> merged;
  for (const ShardedPipeline::ShardStats& shard : shards) {
    for (const ShardedPipeline::StageBreakdown& stage : shard.stages) {
      ShardedPipeline::StageBreakdown* into = nullptr;
      for (ShardedPipeline::StageBreakdown& m : merged) {
        if (m.name == stage.name) {
          into = &m;
          break;
        }
      }
      if (into == nullptr) {
        merged.push_back(stage);
        continue;
      }
      into->in += stage.in;
      into->pass += stage.pass;
      into->drop += stage.drop;
      into->tx += stage.tx;
      into->redirect += stage.redirect;
      into->aborted += stage.aborted;
      into->ns += stage.ns;
    }
  }
  return merged;
}

ShardedPipeline::ShardedPipeline(const Options& options) : options_(options) {
  options_.num_workers =
      std::clamp(options_.num_workers, u32{1}, ebpf::kNumPossibleCpus);
  options_.burst_size = std::clamp(options_.burst_size, u32{1}, kMaxBurstSize);
}

ShardedPipeline::Result ShardedPipeline::MeasureThroughput(
    const HandlerFactory& factory, const Trace& trace) const {
  ProgramFactory programs;
  if (factory) {
    programs = [&factory](u32 cpu) { return ShardProgram{factory(cpu), {}}; };
  }
  return MeasureThroughput(programs, trace);
}

ShardedPipeline::Result ShardedPipeline::MeasureThroughput(
    const ProgramFactory& factory, const Trace& trace) const {
  Result result;
  const u32 workers =
      std::clamp(options_.num_workers, u32{1}, ebpf::kNumPossibleCpus);
  const u32 burst = std::clamp(options_.burst_size, u32{1}, kMaxBurstSize);
  if (trace.empty()) {
    return result;  // no shards, no threads
  }
  result.shards.resize(workers);
  for (u32 w = 0; w < workers; ++w) {
    result.shards[w].cpu = w;
  }

  // Steer the trace: one sub-trace (RX queue) per worker.
  std::vector<Trace> queues(workers);
  for (const Packet& packet : trace) {
    queues[RssQueueForPacket(packet, workers, options_.rss_seed)].push_back(
        packet);
  }

  // Split the measured-packet budget proportionally to queue depth (offered
  // load follows the flow split), making the remainders up on the deepest
  // queues so the shard counts sum exactly to measure_packets.
  std::vector<u64> quota(workers, 0);
  u64 assigned = 0;
  for (u32 w = 0; w < workers; ++w) {
    quota[w] = options_.measure_packets * queues[w].size() / trace.size();
    assigned += quota[w];
  }
  for (u64 leftover = options_.measure_packets - assigned; leftover > 0;) {
    for (u32 w = 0; w < workers && leftover > 0; ++w) {
      if (!queues[w].empty()) {
        ++quota[w];
        --leftover;
      }
    }
  }

  std::vector<WorkerTask> tasks(workers);
  std::vector<std::function<void(ShardStats&)>> finishers(workers);
  for (u32 w = 0; w < workers; ++w) {
    tasks[w].cpu = w;
    tasks[w].burst = burst;
    tasks[w].warmup_packets = queues[w].empty() ? 0 : options_.warmup_packets;
    tasks[w].measure_packets = quota[w];
    tasks[w].queue = std::move(queues[w]);
    if (factory) {
      ShardProgram program = factory(w);
      tasks[w].handler = std::move(program.handler);
      finishers[w] = std::move(program.finish);
    }
    tasks[w].kill_point = "shard.kill." + std::to_string(w);
  }

  const auto wall_start = WallClock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (u32 w = 0; w < workers; ++w) {
    threads.emplace_back([&tasks, w] { tasks[w].Run(); });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  // ---- Failover -----------------------------------------------------------
  // Workers whose kill point fired are drained: their unserved packet budget
  // is replayed on the survivors' handlers, with the dead queues re-steered
  // through a rebuilt RSS indirection table. The replay runs inside the wall
  // window (failover time is part of the measurement) and its per-shard
  // counts land on the absorbing survivors, so shard counts still sum
  // exactly to measure_packets.
  std::vector<bool> alive(workers, true);
  std::vector<u32> failed_workers;
  for (u32 w = 0; w < workers; ++w) {
    if (tasks[w].failed) {
      alive[w] = false;
      failed_workers.push_back(w);
      result.shards[w].failed = true;
    }
  }
  result.failed_workers = static_cast<u32>(failed_workers.size());
  if (!failed_workers.empty() &&
      failed_workers.size() < static_cast<std::size_t>(workers)) {
    std::vector<u32> indirection = BuildRssIndirection(workers);
    // Load-aware rebuild: orphaned slots land on the survivors with the
    // least queue depth, not round-robin by slot order.
    std::vector<u64> depths(workers, 0);
    for (u32 w = 0; w < workers; ++w) {
      depths[w] = tasks[w].queue.size();
    }
    RebuildRssIndirection(indirection, alive, depths);

    // Re-steer every dead queue's packets onto survivors and collect the
    // unserved budget.
    std::vector<Trace> requeues(workers);
    u64 unserved = 0;
    for (u32 f : failed_workers) {
      unserved += tasks[f].measure_packets - tasks[f].stats.packets;
      for (const Packet& packet : tasks[f].queue) {
        requeues[RssQueueForPacketViaIndirection(packet, indirection,
                                                 options_.rss_seed)]
            .push_back(packet);
      }
    }
    u64 requeue_depth = 0;
    for (const Trace& q : requeues) {
      requeue_depth += q.size();
    }

    if (unserved > 0 && requeue_depth > 0) {
      // Same exact-split scheme as the primary quota: proportional to the
      // re-steered depth, remainders made up round-robin.
      std::vector<u64> quota2(workers, 0);
      u64 assigned2 = 0;
      for (u32 w = 0; w < workers; ++w) {
        quota2[w] = unserved * requeues[w].size() / requeue_depth;
        assigned2 += quota2[w];
      }
      for (u64 leftover = unserved - assigned2; leftover > 0;) {
        for (u32 w = 0; w < workers && leftover > 0; ++w) {
          if (!requeues[w].empty()) {
            ++quota2[w];
            --leftover;
          }
        }
      }

      std::vector<WorkerTask> replay(workers);
      std::vector<std::thread> replay_threads;
      for (u32 w = 0; w < workers; ++w) {
        if (quota2[w] == 0) {
          continue;
        }
        replay[w].cpu = w;
        replay[w].burst = burst;
        replay[w].warmup_packets = 0;  // survivor state is already warm
        replay[w].measure_packets = quota2[w];
        replay[w].queue = std::move(requeues[w]);
        replay[w].handler = tasks[w].handler;  // survivor's own NF state
        // kill_point left empty: one failover round per run.
        replay_threads.emplace_back([&replay, w] { replay[w].Run(); });
      }
      for (std::thread& t : replay_threads) {
        t.join();
      }

      for (u32 w = 0; w < workers; ++w) {
        if (quota2[w] == 0) {
          continue;
        }
        tasks[w].busy_seconds += replay[w].busy_seconds;
        tasks[w].stats.packets += replay[w].stats.packets;
        tasks[w].stats.dropped += replay[w].stats.dropped;
        tasks[w].stats.passed += replay[w].stats.passed;
        tasks[w].stats.aborted += replay[w].stats.aborted;
        tasks[w].stats.degraded += replay[w].stats.packets;
        result.failover_packets += replay[w].stats.packets;
      }
    }
  }

  result.wall_seconds = std::chrono::duration_cast<
                            std::chrono::duration<double>>(WallClock::now() -
                                                           wall_start)
                            .count();

  double busy_total = 0.0;
  for (u32 w = 0; w < workers; ++w) {
    ShardStats& shard = result.shards[w];
    shard.queue_depth = tasks[w].queue.size();
    shard.busy_seconds = tasks[w].busy_seconds;
    shard.stats = tasks[w].stats;
    // Recompute the per-shard rate over the merged (primary + failover)
    // window; Run() computed it over the primary window only.
    shard.stats.seconds = shard.busy_seconds;
    if (shard.busy_seconds > 0.0 && shard.stats.packets > 0) {
      shard.stats.pps =
          static_cast<double>(shard.stats.packets) / shard.busy_seconds;
      shard.stats.ns_per_packet = shard.busy_seconds * 1e9 /
                                  static_cast<double>(shard.stats.packets);
    }
    result.total.packets += shard.stats.packets;
    result.total.dropped += shard.stats.dropped;
    result.total.passed += shard.stats.passed;
    result.total.aborted += shard.stats.aborted;
    result.total.degraded += shard.stats.degraded;
    result.total.pps += shard.stats.pps;  // dedicated-core aggregate
    busy_total += shard.busy_seconds;
    result.makespan_seconds =
        std::max(result.makespan_seconds, shard.busy_seconds);
  }
  result.total.seconds = result.wall_seconds;
  if (result.total.packets > 0 && busy_total > 0.0) {
    result.total.ns_per_packet =
        busy_total * 1e9 / static_cast<double>(result.total.packets);
  }
  if (result.makespan_seconds > 0.0) {
    result.offered_pps =
        static_cast<double>(result.total.packets) / result.makespan_seconds;
  }

  for (u32 w = 0; w < workers; ++w) {
    if (finishers[w]) {
      finishers[w](result.shards[w]);
    }
  }
  result.total_stages = MergeStageBreakdowns(result.shards);
  return result;
}

}  // namespace pktgen
