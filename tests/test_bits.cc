// Unit and property tests for the bit-manipulation algorithms (core/bits.h)
// and their kfunc wrappers. The central property: the software emulations an
// eBPF program must use agree bit-for-bit with the hardware-backed versions.
#include "core/bits.h"

#include <gtest/gtest.h>

#include "core/bits_kfunc.h"
#include "pktgen/flowgen.h"

namespace enetstl {
namespace {

TEST(Ffs64, ZeroReturns64) {
  EXPECT_EQ(Ffs64(0), 64u);
  EXPECT_EQ(SoftFfs64(0), 64u);
  EXPECT_EQ(kfunc::Ffs64(0), 64u);
}

TEST(Ffs64, SingleBitPositions) {
  for (u32 i = 0; i < 64; ++i) {
    const u64 x = 1ull << i;
    EXPECT_EQ(Ffs64(x), i) << "bit " << i;
    EXPECT_EQ(SoftFfs64(x), i) << "bit " << i;
  }
}

TEST(Ffs64, LowestOfMultipleBits) {
  EXPECT_EQ(Ffs64(0b1100), 2u);
  EXPECT_EQ(Ffs64(0x8000000000000001ull), 0u);
  EXPECT_EQ(SoftFfs64(0b1100), 2u);
}

TEST(Fls64, ZeroReturns64) {
  EXPECT_EQ(Fls64(0), 64u);
  EXPECT_EQ(SoftFls64(0), 64u);
  EXPECT_EQ(kfunc::Fls64(0), 64u);
}

TEST(Fls64, SingleBitPositions) {
  for (u32 i = 0; i < 64; ++i) {
    const u64 x = 1ull << i;
    EXPECT_EQ(Fls64(x), i) << "bit " << i;
    EXPECT_EQ(SoftFls64(x), i) << "bit " << i;
  }
}

TEST(Fls64, HighestOfMultipleBits) {
  EXPECT_EQ(Fls64(0b1100), 3u);
  EXPECT_EQ(Fls64(0x8000000000000001ull), 63u);
}

TEST(Popcnt64, KnownValues) {
  EXPECT_EQ(Popcnt64(0), 0u);
  EXPECT_EQ(Popcnt64(~0ull), 64u);
  EXPECT_EQ(Popcnt64(0xaaaaaaaaaaaaaaaaull), 32u);
  EXPECT_EQ(SoftPopcnt64(0xaaaaaaaaaaaaaaaaull), 32u);
  EXPECT_EQ(kfunc::Popcnt64(0xff), 8u);
}

// Property: software emulations agree with the hardware versions on random
// inputs — the eBPF baseline computes the same values, just slower.
TEST(BitsProperty, SoftMatchesHardRandom) {
  pktgen::Rng rng(0xbeefcafe);
  for (int i = 0; i < 100000; ++i) {
    const u64 x = rng.NextU64();
    ASSERT_EQ(SoftFfs64(x), Ffs64(x)) << std::hex << x;
    ASSERT_EQ(SoftFls64(x), Fls64(x)) << std::hex << x;
    ASSERT_EQ(SoftPopcnt64(x), Popcnt64(x)) << std::hex << x;
  }
}

TEST(BitsProperty, KfuncMatchesInline) {
  pktgen::Rng rng(0x12345);
  for (int i = 0; i < 10000; ++i) {
    const u64 x = rng.NextU64();
    ASSERT_EQ(kfunc::Ffs64(x), Ffs64(x));
    ASSERT_EQ(kfunc::Fls64(x), Fls64(x));
    ASSERT_EQ(kfunc::Popcnt64(x), Popcnt64(x));
  }
}

TEST(Bitmap, SetTestClear) {
  Bitmap bm(200);
  EXPECT_FALSE(bm.Test(0));
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_FALSE(bm.Test(1));
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.CountSet(), 3u);
}

TEST(Bitmap, FindFirstSetEmpty) {
  Bitmap bm(128);
  EXPECT_EQ(bm.FindFirstSet(), 128u);
  EXPECT_EQ(bm.FindFirstSetFrom(64), 128u);
  EXPECT_EQ(bm.FindFirstSetFrom(500), 128u);
}

TEST(Bitmap, FindFirstSetFromSkipsEarlierBits) {
  Bitmap bm(256);
  bm.Set(10);
  bm.Set(100);
  bm.Set(200);
  EXPECT_EQ(bm.FindFirstSet(), 10u);
  EXPECT_EQ(bm.FindFirstSetFrom(10), 10u);
  EXPECT_EQ(bm.FindFirstSetFrom(11), 100u);
  EXPECT_EQ(bm.FindFirstSetFrom(101), 200u);
  EXPECT_EQ(bm.FindFirstSetFrom(201), 256u);
}

TEST(Bitmap, FindFirstSetCrossesWordBoundary) {
  Bitmap bm(192);
  bm.Set(190);
  EXPECT_EQ(bm.FindFirstSetFrom(0), 190u);
  EXPECT_EQ(bm.FindFirstSetFrom(64), 190u);
  EXPECT_EQ(bm.FindFirstSetFrom(190), 190u);
  EXPECT_EQ(bm.FindFirstSetFrom(191), 192u);
}

TEST(Bitmap, ResetClearsEverything) {
  Bitmap bm(100);
  for (u32 i = 0; i < 100; i += 7) {
    bm.Set(i);
  }
  bm.Reset();
  EXPECT_EQ(bm.CountSet(), 0u);
  EXPECT_EQ(bm.FindFirstSet(), 100u);
}

// Property: FindFirstSetFrom agrees with a naive linear scan.
TEST(BitmapProperty, FindMatchesNaiveScan) {
  pktgen::Rng rng(777);
  for (int round = 0; round < 200; ++round) {
    const u32 bits = 1 + static_cast<u32>(rng.NextBounded(300));
    Bitmap bm(bits);
    for (u32 i = 0; i < bits; ++i) {
      if (rng.NextBounded(4) == 0) {
        bm.Set(i);
      }
    }
    for (u32 from = 0; from <= bits; from += 1 + from / 7) {
      u32 naive = bits;
      for (u32 i = from; i < bits; ++i) {
        if (bm.Test(i)) {
          naive = i;
          break;
        }
      }
      ASSERT_EQ(bm.FindFirstSetFrom(from), naive)
          << "bits=" << bits << " from=" << from;
    }
  }
}

// Parameterized sweep: bitmaps with exactly one bit set at every position.
class BitmapSingleBit : public ::testing::TestWithParam<u32> {};

TEST_P(BitmapSingleBit, FindsTheOnlyBit) {
  const u32 pos = GetParam();
  Bitmap bm(512);
  bm.Set(pos);
  EXPECT_EQ(bm.FindFirstSet(), pos);
  EXPECT_EQ(bm.CountSet(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllWordOffsets, BitmapSingleBit,
                         ::testing::Values(0u, 1u, 63u, 64u, 65u, 127u, 128u,
                                           255u, 256u, 300u, 511u));

}  // namespace
}  // namespace enetstl
