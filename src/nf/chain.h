// Service-chain runtime: an ordered NF chain executed through the tail-call
// model (prog-array map, depth <= 33), over single packets and bursts.
//
// Scalar path — each stage is wrapped in an XdpProgram; stage i's program
// runs its NF and, on kPass, bpf_tail_calls stage i+1 through the prog array
// (the SRv6 service-function-chaining pattern). Any other verdict exits the
// chain with that verdict, exactly as an XDP program returning DROP/TX ends
// packet processing. Load() pushes every stage through the metadata-assisted
// verifier; a chain of more than ebpf::kMaxTailCallChain (33) programs is
// rejected at load time, mirroring MAX_TAIL_CALL_CNT.
//
// Burst path — the burst stays batched through the chain: each stage's
// ProcessBurst runs over the compacted survivors of the previous stage, then
// verdicts are partitioned (kPass continues, anything else exits at its
// original slot) and survivors regrouped in arrival order. Because stages
// are independent state machines and survivors keep arrival order, every
// stage sees exactly the packets (in exactly the order) it would see under
// per-packet scalar traversal — so chain verdicts are bit-identical to the
// scalar path, given stage ProcessBurst == scalar Process (the repo-wide
// batching invariant).
//
// Fused path (nf/fused_chain.h) — chains observed hot and structurally
// stable promote to a single-pass specialized executor that carries a
// per-burst verdict bitmask through constant-folded stages; any
// reconfiguration demotes back to the generic walk, which remains the
// semantic oracle.
#ifndef ENETSTL_NF_CHAIN_H_
#define ENETSTL_NF_CHAIN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ebpf/prog_array.h"
#include "nf/fused_chain.h"
#include "nf/nf_interface.h"
#include "nf/nf_registry.h"
#include "pktgen/sharded_pipeline.h"

namespace nf {

struct ChainStageStats {
  std::string name;
  Variant variant = Variant::kKernel;
  u64 in = 0;  // packets entering the stage
  // Verdict histogram; `pass` is also the packets-out count (survivors).
  u64 pass = 0;
  u64 drop = 0;
  u64 tx = 0;
  u64 redirect = 0;
  u64 aborted = 0;
  // Stage time, accumulated on the burst path only (per-packet timing would
  // distort the scalar latency measurements).
  u64 ns = 0;

  u64 out() const { return pass; }

  // Verdict-histogram update shared by the scalar walk, the generic burst
  // walk, and the fused executor.
  void Count(ebpf::XdpAction action) {
    switch (action) {
      case ebpf::XdpAction::kPass:
        ++pass;
        break;
      case ebpf::XdpAction::kDrop:
        ++drop;
        break;
      case ebpf::XdpAction::kTx:
        ++tx;
        break;
      case ebpf::XdpAction::kRedirect:
        ++redirect;
        break;
      case ebpf::XdpAction::kAborted:
        ++aborted;
        break;
    }
  }
};

// An ordered NF chain that is itself a NetworkFunction, so chains register,
// bench, and shard exactly like single NFs (and can nest).
class ChainExecutor : public NetworkFunction {
 public:
  explicit ChainExecutor(std::string name = "chain");
  ~ChainExecutor() override;

  ChainExecutor(const ChainExecutor&) = delete;
  ChainExecutor& operator=(const ChainExecutor&) = delete;

  // Appends a stage; only valid before Load().
  ChainExecutor& AddStage(std::unique_ptr<NetworkFunction> stage);

  // Builds the per-stage XDP programs and the prog array, verifying every
  // program. The chain is runnable only if the result is ok; chains deeper
  // than ebpf::kMaxTailCallChain stages fail verification.
  ebpf::VerifyResult Load();
  bool loaded() const { return loaded_; }

  // Scalar path: one tail-call walk per packet. Throws (like
  // XdpProgram::Run) if the chain is not loaded.
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  // Burst path: partition-and-regroup per stage; accepts any count.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) override;

  std::string_view name() const override { return name_; }
  // The weakest execution model among the stages dominates the label:
  // eNetSTL if any stage uses kfuncs, else eBPF if any stage is pure eBPF,
  // else kernel.
  Variant variant() const override;

  u32 depth() const { return static_cast<u32>(stages_.size()); }
  NetworkFunction& stage(u32 i) { return *stages_[i]; }
  const std::vector<ChainStageStats>& stage_stats() const { return stats_; }
  void ResetStageStats();

  // --- Hot-chain specialization (see nf/fused_chain.h) ---

  // Arms obs-driven promotion: once the chain has been observed hot and
  // structurally stable against `policy` (judged from stage_stats, the same
  // counters the telemetry plane attributes), bursts switch to the fused
  // single-pass executor. Scalar Process() always takes the generic
  // tail-call walk — the semantic oracle fusion is checked against.
  void EnableFusion(FusionPolicy policy = FusionPolicy{});
  // Demotes (if fused) and disarms promotion.
  void DisableFusion();
  // Forces promotion immediately, bypassing the hotness thresholds (benches
  // and tests). Returns false when fusion is not armed, the chain is
  // unloaded, or the depth fails the tail-call budget eligibility check;
  // true when the chain is fused on return.
  bool TryPromoteNow();
  bool fused() const { return fused_ != nullptr; }
  const FusionPolicy& fusion_policy() const { return fusion_policy_; }
  const FusionStats& fusion_stats() const { return fusion_stats_; }

  // Atomically replaces stage `i`: builds and verifies a fresh program bound
  // to the new NF first, then commits by updating the PROG_ARRAY slot (the
  // live-update idiom prog arrays exist for) and swapping the stage in.
  // Ordering guarantees:
  //  * verification failure or a rejected prog-array update happens BEFORE
  //    anything is committed — the chain (including a live fused program) is
  //    left bit-identical to its pre-call state;
  //  * a successful replacement demotes the chain to the generic walk before
  //    the next burst (the fused program never outlives the stage set it was
  //    folded from).
  ebpf::VerifyResult ReplaceStage(u32 i,
                                  std::unique_ptr<NetworkFunction> stage);

  // Structural chain edits on a loaded chain. Stage program manifests
  // declare the remaining suffix depth, so an edit rebuilds and re-verifies
  // EVERY stage program and a fresh prog array aside, then commits the whole
  // set at once — no packet can observe a half-edited chain, and the
  // tail-call budget (<= 33 stages) is revalidated before any commit.
  // Failure leaves the chain bit-identical; success demotes any fused
  // program. `pos` for InsertStage may equal depth() (append).
  ebpf::VerifyResult InsertStage(u32 pos,
                                 std::unique_ptr<NetworkFunction> stage);
  ebpf::VerifyResult RemoveStage(u32 pos);

 private:
  void BurstChunk(ebpf::XdpContext* ctxs, u32 count, ebpf::XdpAction* verdicts);

  // Builds + verifies one stage program bound to `nf` at slot `i` of a chain
  // of `depth` stages, into *out. Binding the NF pointer at build time (not
  // looking stages_[i] up at run time) is what makes a prog-array slot
  // update the real commit point of a replacement: the old program keeps
  // running the old NF until the slot flips. Touches no chain state, so
  // build-aside-then-commit edits verify before mutating anything.
  ebpf::VerifyResult BuildProgramFor(NetworkFunction* nf, u32 i, u32 depth,
                                     std::unique_ptr<ebpf::XdpProgram>* out);
  // Rebuilds stats_[i] identity + telemetry scope after a stage change.
  void BindStageMeta(u32 i);
  void RegisterStageScope(u32 i);

  // Fusion state machine (chain.cc): burst-path promotion bookkeeping,
  // constant-folding promotion, and reconfiguration demotion.
  void MaybePromote(u32 pkts);
  bool PromoteNow();
  void Demote();

  std::string name_;
  std::vector<std::unique_ptr<NetworkFunction>> stages_;
  std::vector<std::unique_ptr<ebpf::XdpProgram>> programs_;
  std::unique_ptr<ebpf::ProgArrayMap> prog_array_;
  std::vector<ChainStageStats> stats_;
  // Telemetry scope per stage ("<chain>/<i>:<stage>"), registered at Load();
  // obs::kInvalidScope when the observability plane is compiled out.
  std::vector<u16> stage_scopes_;
  bool loaded_ = false;

  // Fused-path state.
  bool fusion_armed_ = false;
  FusionPolicy fusion_policy_;
  FusionStats fusion_stats_;
  std::unique_ptr<FusedChain> fused_;
  u32 stable_bursts_ = 0;
  u64 observed_pkts_ = 0;
  // Control scope ("<chain>/fused") for promote/demote kControl events.
  u16 fusion_scope_ = obs::kInvalidScope;

  // Generic-walk burst scratch, hoisted out of the per-burst hot path (the
  // executor is single-threaded per shard, like its stats): the compacted
  // survivor set, its original-slot map, and the per-stage verdicts.
  ebpf::XdpContext burst_live_[kMaxNfBurst];
  u32 burst_slot_of_[kMaxNfBurst];
  ebpf::XdpAction burst_verdicts_[kMaxNfBurst];
};

// Builds (and Load()s) a chain whose stages are registry NFs in the given
// variant, each primed with its bench resident state against `env` so
// membership/classification stages see their intended hit rates. Returns
// nullptr when a name is unknown, the variant is unsupported, or the chain
// fails to load (e.g. more than 33 stages).
std::unique_ptr<ChainExecutor> MakeBenchChain(
    const std::vector<std::string>& stage_names, Variant variant,
    const BenchEnv& env, std::string chain_name = "chain");

// Adapts a per-cpu chain factory into a ShardedPipeline program factory:
// every shard drives its own chain replica (the RSS model — flow-disjoint
// shards, no cross-core state), and each chain's per-stage counters are
// exported into the shard's StageBreakdown when the run finishes.
pktgen::ShardedPipeline::ProgramFactory ShardedChainFactory(
    std::function<std::shared_ptr<ChainExecutor>(u32 cpu)> make_chain);

}  // namespace nf

#endif  // ENETSTL_NF_CHAIN_H_
