// Metadata-assisted verifier model.
//
// eNetSTL does not extend the real verifier; it supplies *metadata* for each
// kfunc (KF_ACQUIRE / KF_RELEASE / KF_RET_NULL, allowed program types,
// constant-argument annotations) and the stock verifier enforces correct API
// usage from that metadata. This module models exactly that contract:
//
//  * KfuncRegistry — the kfunc id set a module (eNetSTL) registers, with
//    per-function metadata flags and resource classes.
//  * ProgramSpec — a declarative summary of an eBPF program: which helpers
//    and kfuncs it calls, whether KF_RET_NULL results are null-checked,
//    and its loop bounds. Real verification derives this from bytecode; the
//    simulation takes it as a manifest and enforces the same rules.
//  * Verifier — rejects specs that violate the metadata contract: unknown
//    helpers/kfuncs, kfuncs called from a disallowed program type, missing
//    null checks, unbalanced acquire/release per resource class, and
//    unbounded loops.
//  * RefLeakChecker — a runtime companion used in tests to confirm that the
//    acquire/release discipline the static rules enforce actually keeps the
//    reference counts balanced at runtime.
#ifndef ENETSTL_EBPF_VERIFIER_H_
#define ENETSTL_EBPF_VERIFIER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ebpf/types.h"

namespace ebpf {

enum class ProgramType {
  kXdp,
  kTcIngress,
  kTcEgress,
  kSocketFilter,
};

// The kernel's MAX_TAIL_CALL_CNT: at most 33 programs may execute in one
// chain walk (the entry program plus 32 tail calls, bounded since 5.10 by a
// per-walk counter). Both the verifier (declared chain depth) and the
// bpf_tail_call runtime model (prog_array.h) enforce it.
inline constexpr u32 kMaxTailCallChain = 33;

// Kfunc metadata flags, mirroring the kernel's KF_* annotations.
enum KfuncFlag : u32 {
  kKfAcquire = 1u << 0,   // returns a reference the program must release
  kKfRelease = 1u << 1,   // consumes (releases) a reference argument
  kKfRetNull = 1u << 2,   // may return NULL; caller must check
  kKfTrustedArgs = 1u << 3,  // pointer args must be verifier-trusted
};

struct KfuncDesc {
  std::string name;
  u32 flags = 0;
  // Resource class ties acquire-kfuncs to the release-kfuncs that free their
  // result (e.g. "mw_node" for node_alloc/get_next vs node_release).
  std::string resource_class;
  std::vector<ProgramType> allowed_types;
};

class KfuncRegistry {
 public:
  // Registers a kfunc; returns false (and ignores the call) on duplicates.
  bool Register(const KfuncDesc& desc);
  const KfuncDesc* Lookup(const std::string& name) const;
  std::size_t size() const { return kfuncs_.size(); }

  // Global registry shared by the library registration code and programs.
  static KfuncRegistry& Global();

 private:
  std::map<std::string, KfuncDesc> kfuncs_;
};

// One call site in a program manifest.
struct KfuncCall {
  std::string name;
  bool null_checked = false;  // program checks the returned pointer
};

struct ProgramSpec {
  std::string name;
  ProgramType type = ProgramType::kXdp;
  std::vector<std::string> helpers_used;
  std::vector<KfuncCall> kfunc_calls;
  // 0 means "program declares no loops"; loops must declare a static bound.
  u32 max_loop_bound = 0;
  bool has_unbounded_loop = false;
  // Verified-instruction estimate; 0 = not declared. The verifier enforces
  // the kernel's 1M-instruction complexity budget against it.
  u64 estimated_insns = 0;
  // Programs reachable from this one through bpf_tail_call, counting the
  // program itself (1 = no tail calls). Chains deeper than kMaxTailCallChain
  // are rejected at load time.
  u32 tail_call_chain_depth = 1;
};

struct VerifyResult {
  bool ok = true;
  std::vector<std::string> errors;

  void Fail(std::string msg) {
    ok = false;
    errors.push_back(std::move(msg));
  }
};

class Verifier {
 public:
  explicit Verifier(const KfuncRegistry& registry) : registry_(registry) {}

  VerifyResult Verify(const ProgramSpec& spec) const;

  // The complexity budget: 1M verified instructions in modern kernels; we
  // cap declared loop bounds at this many iterations and reject programs
  // whose declared instruction estimate exceeds it.
  static constexpr u32 kMaxLoopBound = 1u << 20;
  static constexpr u64 kMaxInsns = 1u << 20;

  // Helper functions known to the environment model.
  static const std::set<std::string>& KnownHelpers();

 private:
  const KfuncRegistry& registry_;
};

// Runtime acquire/release tracker. Datapath code does not use it; tests wrap
// API sequences with it to prove the discipline holds dynamically.
// Thread-safe: sharded-pipeline tests record acquires/releases from every
// worker thread against one shared checker.
class RefLeakChecker {
 public:
  void OnAcquire(const void* ptr, const std::string& resource_class);
  // Returns false if the pointer was never acquired (double release /
  // release of foreign pointer).
  bool OnRelease(const void* ptr, const std::string& resource_class);
  std::size_t LiveCount() const;
  std::size_t LiveCount(const std::string& resource_class) const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<const void*, std::string> live_;
};

}  // namespace ebpf

#endif  // ENETSTL_EBPF_VERIFIER_H_
