#include "pktgen/handoff_ring.h"

#include <cstring>

namespace pktgen {

bool HandoffRing::Donate(const SlotHandoff& handoff) {
  void* rec = ring_.Reserve(sizeof(SlotHandoff));
  if (rec == nullptr) {
    return false;  // ring full; ringbuf counted the dropped event
  }
  std::memcpy(rec, &handoff, sizeof(SlotHandoff));
  ring_.Submit(rec);
  return true;
}

std::size_t HandoffRing::Drain(
    const std::function<void(const SlotHandoff&)>& fn) {
  const std::size_t n = ring_.Consume([&fn](const void* payload, u32 len) {
    if (len != sizeof(SlotHandoff)) {
      return;  // foreign record; the scale-out plane only writes SlotHandoff
    }
    SlotHandoff handoff;
    std::memcpy(&handoff, payload, sizeof(SlotHandoff));
    fn(handoff);
  });
  delivered_ += n;
  return n;
}

}  // namespace pktgen
