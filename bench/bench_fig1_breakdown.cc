// Figure 1: fraction of NF execution time spent in the shared
// performance-critical behaviors (O1..O6, paper range 20.6%-65.4%; O5,
// non-contiguous memory, is not shown because eBPF cannot run it at all).
//
// Method: for each observation's representative NF (pure-eBPF variant),
// measure the full per-packet time T, then micro-measure the isolated
// shared-behavior operation cost t_op at the per-packet multiplicity the NF
// uses; the share is t_op / T.
#include <chrono>

#include "bench/bench_util.h"
#include "core/bits.h"
#include "core/compare.h"
#include "core/hash.h"
#include "ebpf/helper.h"
#include "ebpf/linklist.h"
#include "nf/cms.h"
#include "nf/cuckoo_switch.h"
#include "nf/eiffel.h"
#include "nf/nitro.h"
#include "nf/timewheel.h"

namespace {

using bench::u32;
using bench::u64;
using Clock = std::chrono::steady_clock;

// Nanoseconds per iteration of `fn` over `iters` runs.
template <typename Fn>
double NsPerOp(u64 iters, Fn fn) {
  const auto start = Clock::now();
  for (u64 i = 0; i < iters; ++i) {
    fn(i);
  }
  const auto end = Clock::now();
  return std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(
             end - start)
             .count() /
         static_cast<double>(iters);
}

double FullNsPerPacket(nf::NetworkFunction& nf, const pktgen::Trace& trace) {
  return bench::MakePipeline()
      .MeasureThroughput(nf.Handler(), trace)
      .ns_per_packet;
}

void PrintRow(const char* obs, const char* nf, double op_ns, double total_ns) {
  std::printf("%-42s %-16s %10.1f %10.1f %9.1f%%\n", obs, nf, op_ns, total_ns,
              op_ns / total_ns * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  bench::PrintHeader(
      "Figure 1: share of execution time in the shared behaviors (eBPF "
      "variants)");
  std::printf("%-42s %-16s %10s %10s %10s\n", "observation", "nf", "op(ns)",
              "total(ns)", "share");
  ebpf::helpers::SeedPrandom(0x1111);
  const auto flows = pktgen::MakeFlowPopulation(4096, 81);
  const auto zipf = pktgen::MakeZipfTrace(flows, 16384, 1.1, 82);
  constexpr u64 kIters = 2'000'000;

  {  // O1: bit instructions (Eiffel, software FFS x levels per dequeue).
    nf::EiffelConfig config;
    config.levels = 3;
    nf::EiffelEbpf q(config);
    const auto trace =
        pktgen::MakeQueueingTrace(flows, 16384, q.num_priorities(), 83);
    const double total = FullNsPerPacket(q, trace);
    // The micro op is the loop-FFS the eBPF variant actually runs, on words
    // whose first set bit is uniform over [0, 64) as queue occupancy makes it.
    pktgen::Rng rng(84);
    volatile u32 sink = 0;
    std::vector<u64> words(1024);
    for (auto& w : words) {
      w = ~0ull << rng.NextBounded(64);
    }
    const double ffs_ns = NsPerOp(kIters, [&](u64 i) {
      sink += enetstl::SoftFfsLoop64(words[i & 1023]);
    });
    // Dequeue walks `levels` FFS queries; the trace is half dequeues.
    PrintRow("O1 leveraging hardware bit instructions", "eiffel-cffs",
             ffs_ns * config.levels * 0.5, total);
  }

  {  // O2: multiple hash functions (count-min). Differential measurement:
     // the same NF with 8 rows vs 1 row isolates the per-row hash+count
     // work; scaling 7 rows' delta to all 8 gives the behavior's share.
    nf::CmsConfig config8;
    config8.rows = 8;
    config8.cols = 4096;
    nf::CmsEbpf cms8(config8);
    nf::CmsConfig config1 = config8;
    config1.rows = 1;
    nf::CmsEbpf cms1(config1);
    const double total = FullNsPerPacket(cms8, zipf);
    const double reduced = FullNsPerPacket(cms1, zipf);
    const double op_ns = (total - reduced) * 8.0 / 7.0;
    PrintRow("O2 using multiple hash functions", "count-min", op_ns, total);
  }

  {  // O3: fundamental data structures (time wheel, BPF list push+pop).
    nf::TimeWheelConfig config;
    config.granularity_ns = 1024;
    nf::TimeWheelEbpf tw(config);
    const auto trace = pktgen::MakeQueueingTrace(
        flows, 16384, nf::kTvrSize * (nf::kTvnSize - 1) / 2, 85);
    const double total = FullNsPerPacket(tw, trace);
    ebpf::BpfObjPool<nf::TwElem> pool(1024);
    ebpf::BpfSpinLock lock;
    ebpf::BpfList<nf::TwElem> list;
    nf::TwElem elem{};
    const double list_ns = NsPerOp(kIters, [&](u64 i) {
      list.PushBack(pool, lock, elem);
      nf::TwElem out;
      list.PopFront(pool, lock, &out);
    });
    // One list operation (push or pop) per packet on average.
    PrintRow("O3 building on fundamental data structures", "timewheel",
             list_ns / 2.0, total);
  }

  {  // O4: random-number updating (NitroSketch, 8 helper calls per packet).
    nf::NitroConfig config;
    config.rows = 8;
    config.update_prob = 1.0 / 16;
    nf::NitroEbpf nitro(config);
    const double total = FullNsPerPacket(nitro, zipf);
    volatile u32 sink = 0;
    const double rand_ns = NsPerOp(kIters, [&](u64) {
      sink += ebpf::helpers::BpfGetPrandomU32();
    });
    PrintRow("O4 updating based on a random number", "nitro-sketch",
             rand_ns * config.rows, total);
  }

  {  // O6: multiple buckets in contiguous memory (CuckooSwitch compare).
    nf::CuckooSwitchConfig config;
    config.num_buckets = 1024;
    nf::CuckooSwitchEbpf sw(config);
    std::vector<ebpf::FiveTuple> resident;
    for (const auto& flow : flows) {
      if (resident.size() >= sw.capacity() * 95 / 100) {
        break;
      }
      if (sw.Insert(flow, 1)) {
        resident.push_back(flow);
      }
    }
    const auto trace = pktgen::MakeUniformTrace(resident, 16384, 86);
    const double total = FullNsPerPacket(sw, trace);
    // Scalar scan of one 8-slot bucket of 16-byte keys, twice per lookup.
    alignas(16) ebpf::u8 keys[8 * 16];
    pktgen::Rng rng(87);
    for (auto& b : keys) {
      b = static_cast<ebpf::u8>(rng.NextU32());
    }
    ebpf::u8 probe[16] = {};
    volatile ebpf::s32 sink = 0;
    const double scan_ns = NsPerOp(kIters, [&](u64 i) {
      probe[0] = static_cast<ebpf::u8>(i);
      sink += enetstl::scalar::FindKey16(keys, 8, probe);
    });
    PrintRow("O6 arranging multiple buckets contiguously", "cuckoo-switch",
             scan_ns * 2.0, total);
  }

  std::printf(
      "-- O5 (non-contiguous memory) is absent by construction: eBPF cannot "
      "run it (P1). Paper range for shares: 20.6%% - 65.4%%.\n");
  return 0;
}
