// Internal: inline hardware-CRC hash kernel. hash.cc wraps it as the
// out-of-line hw_hash_crc kfunc; kernel-native NF baselines include this
// header to get the same instruction sequence with no call boundary.
#ifndef ENETSTL_CORE_HASH_INL_H_
#define ENETSTL_CORE_HASH_INL_H_

#include <cstring>

#include "core/hash.h"

#if defined(ENETSTL_HAVE_SSE42)
#include <nmmintrin.h>
#endif

namespace enetstl {
namespace internal {

// Read prefetch into all cache levels. A hint, never a fault: issuing it for
// an address the probe stage may not touch (e.g. a bucket that turns out to
// hold the key in its primary slot only) is safe.
inline void PrefetchRead(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline u32 HwHashCrcImpl(const void* key, std::size_t len, u32 seed) {
#if defined(ENETSTL_HAVE_SSE42)
  const u8* p = static_cast<const u8*>(key);
  u32 crc = ~seed;
  while (len >= 8) {
    u64 w;
    std::memcpy(&w, p, 8);
    crc = static_cast<u32>(_mm_crc32_u64(crc, w));
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    u32 w;
    std::memcpy(&w, p, 4);
    crc = _mm_crc32_u32(crc, w);
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *p);
    ++p;
    --len;
  }
  return ~crc;
#else
  return SoftCrc32c(key, len, seed);
#endif
}

}  // namespace internal
}  // namespace enetstl

#endif  // ENETSTL_CORE_HASH_INL_H_
