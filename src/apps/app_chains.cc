#include "apps/app_chains.h"

#include <stdexcept>
#include <utility>

#include "apps/ebpf_sketch.h"
#include "apps/pcn_bridge.h"
#include "nf/nf_registry.h"

namespace apps {

namespace {

// App cores by variant: kEbpf is the origin (BPF-map) core, kEnetstl the
// swapped core. Apps have no kernel-native build.
bool CoreForVariant(nf::Variant variant, CoreKind* core) {
  switch (variant) {
    case nf::Variant::kEbpf:
      *core = CoreKind::kOrigin;
      return true;
    case nf::Variant::kEnetstl:
      *core = CoreKind::kEnetstl;
      return true;
    case nf::Variant::kKernel:
      return false;
  }
  return false;
}

void RegisterPcnBridge(nf::NfRegistry& registry) {
  nf::NfEntry entry;
  entry.name = "pcn-chain";
  entry.category = "application";
  entry.variants = {nf::Variant::kEbpf, nf::Variant::kEnetstl};
  entry.caps.batched = true;  // chain-backed burst path
  entry.factory =
      [](nf::Variant v) -> std::unique_ptr<nf::NetworkFunction> {
    CoreKind core;
    if (!CoreForVariant(v, &core)) {
      return nullptr;
    }
    return std::make_unique<PcnBridge>(core, PcnBridgeConfig{});
  };
  registry.Register(std::move(entry));
}

void RegisterKatranLb(nf::NfRegistry& registry) {
  nf::NfEntry entry;
  entry.name = "katran-lb";
  entry.category = "application";
  entry.variants = {nf::Variant::kEbpf, nf::Variant::kEnetstl};
  entry.caps.batched = true;
  entry.factory =
      [](nf::Variant v) -> std::unique_ptr<nf::NetworkFunction> {
    CoreKind core;
    if (!CoreForVariant(v, &core)) {
      return nullptr;
    }
    return std::make_unique<KatranLb>(core, KatranConfig{});
  };
  registry.Register(std::move(entry));
}

void RegisterRakeLimit(nf::NfRegistry& registry) {
  nf::NfEntry entry;
  entry.name = "rakelimit";
  entry.category = "application";
  entry.variants = {nf::Variant::kEbpf, nf::Variant::kEnetstl};
  entry.factory =
      [](nf::Variant v) -> std::unique_ptr<nf::NetworkFunction> {
    CoreKind core;
    if (!CoreForVariant(v, &core)) {
      return nullptr;
    }
    return std::make_unique<RakeLimit>(core, RakeLimitConfig{});
  };
  registry.Register(std::move(entry));
}

void RegisterSketchService(nf::NfRegistry& registry) {
  nf::NfEntry entry;
  entry.name = "sketch-service";
  entry.category = "application";
  entry.variants = {nf::Variant::kEbpf, nf::Variant::kEnetstl};
  entry.factory =
      [](nf::Variant v) -> std::unique_ptr<nf::NetworkFunction> {
    CoreKind core;
    if (!CoreForVariant(v, &core)) {
      return nullptr;
    }
    return std::make_unique<SketchService>(core, SketchServiceConfig{});
  };
  registry.Register(std::move(entry));
}

void RegisterLbChain(nf::NfRegistry& registry) {
  nf::NfEntry entry;
  entry.name = "lb-chain";
  entry.category = "application";
  entry.variants = {nf::Variant::kEbpf, nf::Variant::kEnetstl};
  entry.caps.batched = true;  // ChainExecutor bursts natively
  entry.factory =
      [](nf::Variant v) -> std::unique_ptr<nf::NetworkFunction> {
    CoreKind core;
    if (!CoreForVariant(v, &core)) {
      return nullptr;
    }
    return MakeLbChain(core);
  };
  registry.Register(std::move(entry));
}

}  // namespace

std::unique_ptr<nf::ChainExecutor> MakeLbChain(
    CoreKind core, const RakeLimitConfig& rake_config,
    const KatranConfig& katran_config) {
  auto chain = std::make_unique<nf::ChainExecutor>("lb-chain");
  chain->AddStage(std::make_unique<RakeLimit>(core, rake_config));
  chain->AddStage(std::make_unique<KatranLb>(core, katran_config));
  const ebpf::VerifyResult result = chain->Load();
  if (!result.ok) {
    throw std::logic_error("lb-chain failed verification: " +
                           (result.errors.empty() ? std::string("?")
                                                  : result.errors.front()));
  }
  // A deployed LB chain is exactly the stable-topology workload hot-chain
  // specialization targets: arm obs-driven fusion so sustained traffic
  // promotes to the single-pass executor, and any stage swap demotes.
  chain->EnableFusion();
  return chain;
}

nf::ReconfigResult SwapLbBackends(nf::ChainReconfig& plane,
                                  const std::vector<ebpf::u32>& backends,
                                  const nf::SwapOptions& options) {
  // Clone the running stage's core and config, changing only the backend
  // set; the replacement inherits the connection table via state transfer.
  const KatranLb* running = nullptr;
  nf::ChainExecutor& chain = plane.chain();
  for (ebpf::u32 i = 0; i < chain.depth(); ++i) {
    running = dynamic_cast<const KatranLb*>(&chain.stage(i));
    if (running != nullptr) {
      break;
    }
  }
  if (running == nullptr) {
    nf::ReconfigResult result;
    result.error = nf::ReconfigError::kBadStage;
    result.message = "chain '" + std::string(chain.name()) +
                     "' has no katran-lb stage";
    return result;
  }
  KatranConfig config = running->config();
  config.backends = backends;
  config.num_backends = static_cast<ebpf::u32>(backends.size());
  auto replacement = std::make_unique<KatranLb>(running->core(), config);
  return plane.SwapNfWith("katran-lb", std::move(replacement), options);
}

void RegisterAppNfs() {
  static const bool registered = [] {
    nf::NfRegistry& registry = nf::NfRegistry::Global();
    RegisterPcnBridge(registry);
    RegisterKatranLb(registry);
    RegisterRakeLimit(registry);
    RegisterSketchService(registry);
    RegisterLbChain(registry);
    return true;
  }();
  (void)registered;
}

}  // namespace apps
