// Shard-imbalance signal derived from the telemetry plane.
//
// The scale-out pipeline's migration controller needs two things from PR 5's
// per-shard observability: the per-shard mean service time (from the
// "shard/<cpu>" log2 latency histograms) and a skew verdict over the shards'
// estimated completion costs. Both live here, on the obs side, so the
// controller consumes a signal rather than raw histograms — and so the same
// signal is exportable to any other consumer (bench tables, exporter).
//
// Windowing: Telemetry histograms are cumulative; ShardSignalReader keeps
// the last observed (samples, total_ns) per scope and reports per-window
// deltas, which is what a K-consecutive-windows trigger needs. With
// ENETSTL_OBS=OFF the snapshots are empty, every window reports zero
// samples, and consumers fall back to their obs-free estimate (the
// controller uses backlog alone) — the plane degrades, never breaks.
#ifndef ENETSTL_OBS_IMBALANCE_H_
#define ENETSTL_OBS_IMBALANCE_H_

#include <vector>

#include "obs/telemetry.h"

namespace obs {

// One shard's telemetry window: histogram delta since the previous Poll.
struct ShardSignal {
  u16 scope = kInvalidScope;
  u64 samples = 0;     // sampled packets this window
  u64 total_ns = 0;    // their accumulated latency
  double mean_ns = 0;  // total_ns / samples; 0 when the window is empty
};

// Skew verdict over per-shard estimated completion costs.
struct ImbalanceSignal {
  bool valid = false;  // >= 2 busy shards, or 1 busy shard next to idle ones
  double skew = 0.0;   // max cost / mean cost over ALL shards
  u32 hottest = 0;     // index of the max-cost shard
  u32 coldest = 0;     // index of the min-cost shard; idle shards win
};

// max/mean skew over `costs` (one estimated completion cost per shard). The
// mean includes idle (zero-cost) shards — one busy shard next to N-1 drained
// ones is the strongest imbalance, skew -> N, not a balanced system. An idle
// shard is preferred as `coldest` over any merely-cold busy shard.
ImbalanceSignal ComputeShardImbalance(const std::vector<double>& costs);

// Per-window histogram reader over a fixed set of telemetry scopes.
class ShardSignalReader {
 public:
  explicit ShardSignalReader(std::vector<u16> scopes);

  // Snapshot every scope and report the delta since the previous Poll.
  // First call reports everything accumulated so far.
  std::vector<ShardSignal> Poll();

  // Mean service time for shard `i` from its last Poll window, falling back
  // to the given default when the window held fewer than `min_samples`.
  // (A thin window's mean is noise; the controller would rather weigh
  // backlog alone than steer on three samples.)
  double MeanNsOr(std::size_t i, u64 min_samples, double fallback) const;

 private:
  std::vector<u16> scopes_;
  std::vector<ShardSignal> last_window_;
  std::vector<u64> seen_samples_;
  std::vector<u64> seen_total_ns_;
};

}  // namespace obs

#endif  // ENETSTL_OBS_IMBALANCE_H_
