// Open-loop arrival engine: offered load decoupled from service rate.
//
// Every other harness in this repo is CLOSED-LOOP — the next burst is
// offered only after the previous one returns, so the generator silently
// slows down to whatever the NF under test can absorb. That shape can never
// observe queueing collapse, and its latency numbers suffer coordinated
// omission: the packets that would have arrived during a stall are simply
// never generated, so the stall's queue-wait vanishes from the percentiles.
//
// This engine fixes both by construction:
//
//  * Each packet carries a VIRTUAL ARRIVAL TIME drawn from a pluggable
//    arrival process (Poisson, Markov-modulated ON/OFF, linear ramp) at a
//    configured offered rate — the generator never waits for the server.
//  * Arrivals feed bounded per-shard ingress queues. When the server falls
//    behind, the queue grows; when it is full, packets TAIL-DROP and are
//    counted — overload is visible as queue depth and loss, exactly like a
//    NIC ring, never as silent back-pressure.
//  * The server drains the queue in bursts; each burst's service time (a
//    real measured duration, or an injected synthetic model in tests)
//    advances the virtual clock. A packet's SOJOURN time is
//    departure - virtual arrival: service PLUS every nanosecond it queued,
//    including time queued behind a stalled consumer. Recording sojourn from
//    arrival rather than from dequeue is the coordinated-omission fix.
//
// The simulation is sequential and deterministic given (trace, arrivals,
// service model): multi-shard runs simulate each shard's queue+server pair
// independently in steering order, so differential tests can replay the
// exact admitted sequence through a twin NF and demand bit-identical
// verdicts (the scenario matrix's graceful-degradation invariant).
#ifndef ENETSTL_PKTGEN_OPENLOOP_H_
#define ENETSTL_PKTGEN_OPENLOOP_H_

#include <functional>
#include <utility>
#include <vector>

#include "obs/telemetry.h"
#include "pktgen/flowgen.h"
#include "pktgen/packet.h"
#include "pktgen/pipeline.h"

namespace pktgen {

// --- Arrival processes ---------------------------------------------------
//
// Each generator returns `count` nondecreasing virtual arrival timestamps
// (ns, starting near 0), deterministic for a given seed.

// Poisson arrivals at `rate_pps`: i.i.d. exponential inter-arrival gaps with
// mean 1e9/rate_pps ns (CV = 1).
std::vector<u64> MakePoissonArrivals(double rate_pps, u32 count, u64 seed);

// Markov-modulated ON/OFF (bursty) arrivals: the source alternates between
// an ON state emitting Poisson arrivals at `peak_pps` and a silent OFF
// state. Dwell times are exponential with mean `mean_on_ns` in ON and
// mean_on_ns * (1 - duty) / duty in OFF, so the long-run fraction of time
// spent ON is `duty` and the mean offered rate is peak_pps * duty.
// Requires 0 < duty <= 1 (duty == 1 degenerates to Poisson at peak_pps).
std::vector<u64> MakeOnOffArrivals(double peak_pps, double duty,
                                   double mean_on_ns, u32 count, u64 seed);

// Linear ramp: instantaneous rate grows linearly from start_pps (packet 0)
// to end_pps (packet count-1), with exponential jitter per gap — an
// inhomogeneous Poisson approximation. Sweeping through an NF's capacity in
// one run locates the overload transition without a per-level restart.
std::vector<u64> MakeRampArrivals(double start_pps, double end_pps, u32 count,
                                  u64 seed);

// Mean offered rate implied by an arrival vector: (n-1) gaps over the span.
// 0 when fewer than 2 arrivals.
double OfferedPps(const std::vector<u64>& arrivals);

// --- Service model -------------------------------------------------------

// Serves one burst (writing one verdict per packet) and returns the burst's
// service time in ns, which advances the virtual clock. Must return >= 1 for
// a nonempty burst (the engine clamps, guaranteeing progress).
using ServiceModel =
    std::function<u64(ebpf::XdpContext* ctxs, u32 count,
                      ebpf::XdpAction* verdicts)>;

// Wraps a burst handler with steady-clock timing — the production service
// model. Non-owning: the handler's target must outlive the returned model.
ServiceModel MeasuredService(PacketBurstHandler handler);

// --- Engine --------------------------------------------------------------

struct OpenLoopConfig {
  // Bounded ingress queue capacity per shard; arrivals beyond it tail-drop.
  u32 queue_capacity = 1024;
  // Packets dequeued per service burst (clamped to [1, kMaxBurstSize]).
  u32 burst_size = 32;
  // Independent queue+server pairs; packets steer by 5-tuple hash. Each
  // shard is simulated with its own virtual clock.
  u32 shards = 1;
  u32 steer_seed = 0x9e3779b9u;
  // Ceiling on a single burst's service time (ns); 0 = unlimited. With a
  // MeasuredService model on a shared machine, an OS preemption of the
  // harness lands in the measured burst as a multi-millisecond spike and
  // the virtual clock would charge it to the NF — flooding the queue and
  // faking drops at loads the server handles easily. A generous ceiling
  // (an order of magnitude above honest worst-case burst service) clips
  // exactly those harness artifacts while keeping genuine NF slowdowns
  // visible. Leave 0 for synthetic service models, whose scripted stalls
  // (the coordinated-omission tests) must count in full.
  u64 max_service_ns = 0;
  // Optional telemetry mirror: when a valid scope is given and the global
  // Telemetry plane is enabled, every served packet's sojourn is recorded
  // into that scope (log2 histogram + sampled ObsEvent stream), so the SLO
  // exporter reads open-loop tails through the same plane as everything
  // else. kInvalidScope (default) keeps the engine self-contained.
  obs::u16 obs_scope = obs::kInvalidScope;
  // Optional service-order log of (trace index, verdict) for every served
  // packet; the overload scenarios replay it through a twin NF closed-loop
  // and demand identical verdicts. Null disables logging.
  std::vector<std::pair<u32, ebpf::XdpAction>>* served_log = nullptr;
};

struct OpenLoopStats {
  // Exact accounting invariant: offered == admitted + dropped, and
  // admitted == served after Run returns (the engine always drains).
  u64 offered = 0;
  u64 admitted = 0;
  u64 dropped = 0;  // tail drops at a full ingress queue
  u64 served = 0;

  u64 passed = 0;           // XDP_PASS / TX / REDIRECT verdicts
  u64 dropped_verdicts = 0; // XDP_DROP verdicts (NF decisions, not queue loss)
  u64 aborted = 0;          // XDP_ABORTED verdicts

  u64 max_queue_depth = 0;   // deepest any shard's queue got
  u64 last_departure_ns = 0; // virtual makespan end (max across shards)
  double offered_pps = 0.0;
  double achieved_pps = 0.0; // served / last_departure_ns

  // Sojourn: departure - virtual arrival (queue wait + service). THE
  // open-loop latency. Service: burst-average service time attributed per
  // packet — what a closed-loop harness would have reported; kept so the
  // coordinated-omission divergence is measurable in one run.
  obs::LatencyHist sojourn;
  obs::LatencyHist service;

  double drop_fraction() const {
    return offered > 0
               ? static_cast<double>(dropped) / static_cast<double>(offered)
               : 0.0;
  }
};

class OpenLoopEngine {
 public:
  explicit OpenLoopEngine(const OpenLoopConfig& config);

  // Replays trace[i] arriving at arrivals[i] through the service model.
  // Requires arrivals.size() == trace.size() and arrivals nondecreasing.
  // The trace is copied (NFs rewrite frames in place, e.g. NAT).
  OpenLoopStats Run(const Trace& trace, const std::vector<u64>& arrivals,
                    const ServiceModel& service) const;

  const OpenLoopConfig& config() const { return config_; }

 private:
  OpenLoopConfig config_;
};

}  // namespace pktgen

#endif  // ENETSTL_PKTGEN_OPENLOOP_H_
