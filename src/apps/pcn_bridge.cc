#include "apps/pcn_bridge.h"

#include "core/post_hash.h"

namespace apps {

PcnBridge::PcnBridge(CoreKind core, const PcnBridgeConfig& config)
    : core_(core), config_(config), route_map_(config.route_capacity) {
  nf::CmsConfig cms_config;
  cms_config.rows = config.rate_rows;
  cms_config.cols = config.rate_cols;
  cms_config.seed = config.seed ^ 0x51ed270bu;
  if (core_ == CoreKind::kOrigin) {
    acl_map_ = std::make_unique<ebpf::HashMap<ebpf::FiveTuple, u32>>(
        config.acl_capacity);
    rate_sketch_ = std::make_unique<nf::CmsEbpf>(cms_config);
  } else {
    acl_bloom_map_ =
        std::make_unique<ebpf::RawArrayMap>(1, config.acl_bits / 8);
    rate_sketch_ = std::make_unique<nf::CmsEnetstl>(cms_config);
  }
}

void PcnBridge::BlockFlow(const ebpf::FiveTuple& tuple) {
  if (core_ == CoreKind::kOrigin) {
    acl_map_->UpdateElem(tuple, 1);
    return;
  }
  auto* bitmap = static_cast<ebpf::u64*>(acl_bloom_map_->LookupElem(0));
  if (bitmap != nullptr) {
    enetstl::HashSetBits(bitmap, config_.acl_hashes, config_.acl_bits - 1,
                         &tuple, sizeof(tuple), config_.seed);
  }
}

bool PcnBridge::AddRoute(u32 dst_ip, u32 port) {
  return route_map_.UpdateElem(dst_ip, port) == ebpf::kOk;
}

ebpf::XdpAction PcnBridge::Process(ebpf::XdpContext& ctx) {
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return ebpf::XdpAction::kAborted;
  }

  // Stage 1: ACL deny list.
  if (core_ == CoreKind::kOrigin) {
    if (acl_map_->LookupElem(tuple) != nullptr) {
      ++blocked_;
      return ebpf::XdpAction::kDrop;
    }
  } else {
    auto* bitmap = static_cast<ebpf::u64*>(acl_bloom_map_->LookupElem(0));
    if (bitmap != nullptr &&
        enetstl::HashTestBits(bitmap, config_.acl_hashes, config_.acl_bits - 1,
                              &tuple, sizeof(tuple), config_.seed)) {
      ++blocked_;
      return ebpf::XdpAction::kDrop;
    }
  }

  // Stage 2: DDoS mitigation — estimate the source's packet count and drop
  // it once it exceeds the budget.
  rate_sketch_->Update(&tuple.src_ip, sizeof(tuple.src_ip), 1);
  if (rate_sketch_->Query(&tuple.src_ip, sizeof(tuple.src_ip)) >
      config_.rate_threshold) {
    ++rate_limited_;
    return ebpf::XdpAction::kDrop;
  }

  // Stage 3: route lookup on destination IP (shared BPF hash table).
  if (route_map_.LookupElem(tuple.dst_ip) != nullptr) {
    ++routed_;
    return ebpf::XdpAction::kTx;
  }
  ++unrouted_;
  return ebpf::XdpAction::kPass;  // punt to the stack
}

}  // namespace apps
