// FQ pacing (Eric Dumazet's fq qdisc [24]) — the third NF the paper's
// Table 1 marks infeasible in pure eBPF (P1): fq queues flows in a
// red-black tree ordered by each flow's next transmit time, i.e. a balanced
// search tree of dynamically allocated, pointer-routed nodes.
//
// The eNetSTL variant builds the ordered structure as a TREAP on the memory
// wrapper — a balanced search tree whose rebalancing (rotations) is a pair
// of NodeConnect calls, demonstrating that the wrapper supports fully
// customized tree layouts, not just lists. Out-slot 0 = left child,
// out-slot 1 = right child; each node has one in-slot (its parent edge).
//
// The pacer itself is faithful fq logic: each flow has a rate; enqueueing a
// packet schedules it at the flow's next transmit time; Dequeue releases
// the earliest-scheduled packet whose time has come.
//
// Variants: kernel (std::multimap tree) and eNetSTL (memory-wrapper treap);
// no eBPF variant can exist (the paper's classification).
#ifndef ENETSTL_NF_FQ_PACER_H_
#define ENETSTL_NF_FQ_PACER_H_

#include <map>
#include <optional>
#include <unordered_map>

#include "core/memory_wrapper.h"
#include "ebpf/maps.h"
#include "nf/nf_interface.h"

namespace nf {

struct FqItem {
  u64 time = 0;  // scheduled transmit time (ns); unique tiebreak in low bits
  u32 flow = 0;
};

class FqPacerBase : public NetworkFunction {
 public:
  // ns_per_packet: the pacing gap each flow's packets are spread by.
  explicit FqPacerBase(u64 ns_per_packet) : gap_ns_(ns_per_packet) {}

  // Schedules one packet of `flow` at max(now, flow's next slot); the flow's
  // next slot then advances by the pacing gap. Returns the scheduled time.
  virtual u64 Enqueue(u32 flow, u64 now) = 0;
  // Releases the earliest scheduled packet with time <= now.
  virtual std::optional<FqItem> Dequeue(u64 now) = 0;
  virtual u32 size() const = 0;

  // Packet path: payload word 0 = 1 -> enqueue at the packet's rx time;
  // 0 -> dequeue whatever is due.
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override {
    ebpf::FiveTuple tuple;
    if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
      return ebpf::XdpAction::kAborted;
    }
    u32 op = 0;
    std::memcpy(&op, ctx.data + ebpf::kL4HeaderOffset + 8, 4);
    virtual_now_ += gap_ns_ / 4;
    if (op == 1) {
      Enqueue(tuple.src_ip, virtual_now_);
    } else {
      (void)Dequeue(virtual_now_);
    }
    return ebpf::XdpAction::kDrop;
  }

  std::string_view name() const override { return "fq-pacer"; }

 protected:
  u64 gap_ns_;
  u64 virtual_now_ = 0;
  u64 seq_ = 0;  // uniquifies equal timestamps (low bits of the key)
};

class FqPacerKernel : public FqPacerBase {
 public:
  explicit FqPacerKernel(u64 ns_per_packet) : FqPacerBase(ns_per_packet) {}

  u64 Enqueue(u32 flow, u64 now) override;
  std::optional<FqItem> Dequeue(u64 now) override;
  u32 size() const override { return static_cast<u32>(schedule_.size()); }
  Variant variant() const override { return Variant::kKernel; }

 private:
  std::map<u64, u32> schedule_;  // unique key -> flow
  std::unordered_map<u32, u64> next_slot_;
};

class FqPacerEnetstl : public FqPacerBase {
 public:
  explicit FqPacerEnetstl(u64 ns_per_packet, u32 max_items = 65536);
  ~FqPacerEnetstl() override = default;
  FqPacerEnetstl(const FqPacerEnetstl&) = delete;
  FqPacerEnetstl& operator=(const FqPacerEnetstl&) = delete;

  u64 Enqueue(u32 flow, u64 now) override;
  std::optional<FqItem> Dequeue(u64 now) override;
  u32 size() const override { return size_; }
  Variant variant() const override { return Variant::kEnetstl; }

  const enetstl::NodeProxy& proxy() const { return proxy_; }
  // Test hook: walks the tree and checks the BST-order and heap-priority
  // invariants; returns false if either is violated.
  bool CheckInvariants() const;

 private:
  // Node payload: [u64 key][u32 flow][u32 prio].
  static constexpr u32 kKeyOff = 0;
  static constexpr u32 kFlowOff = 8;
  static constexpr u32 kPrioOff = 12;
  static constexpr u32 kDataSize = 16;
  static constexpr u32 kLeft = 0;
  static constexpr u32 kRight = 1;
  static constexpr u32 kMaxDepth = 96;

  struct NodeInfo {
    u64 key;
    u32 flow;
    u32 prio;
  };

  NodeInfo Read(enetstl::Node* node) const;
  // Rotates `node` (a child of `parent` via `dir`) above its parent;
  // `grandparent` points to `parent` via `pdir`.
  void RotateUp(enetstl::Node* grandparent, u32 pdir, enetstl::Node* parent,
                u32 dir, enetstl::Node* node);
  bool CheckSubtree(enetstl::Node* node, u64 lo, u64 hi, u32 parent_prio,
                    u32 depth) const;

  enetstl::NodeProxy proxy_;
  enetstl::Node* anchor_;  // sentinel; out-slot kLeft holds the root
  ebpf::HashMap<u32, u64> next_slot_;
  u32 size_ = 0;
  u64 prio_rng_ = 0x9e3779b97f4a7c15ull;
};

}  // namespace nf

#endif  // ENETSTL_NF_FQ_PACER_H_
