// Tests for the BPF-style lock-coupled linked list and its object pool.
#include "ebpf/linklist.h"

#include <gtest/gtest.h>

#include <deque>

#include "pktgen/flowgen.h"

namespace ebpf {
namespace {

struct Item {
  u64 value;
};

TEST(BpfObjPool, AllocFreeCycle) {
  BpfObjPool<Item> pool(2);
  const u32 a = pool.Alloc();
  const u32 b = pool.Alloc();
  ASSERT_NE(a, BpfObjPool<Item>::kNil);
  ASSERT_NE(b, BpfObjPool<Item>::kNil);
  EXPECT_EQ(pool.Alloc(), BpfObjPool<Item>::kNil);  // exhausted
  EXPECT_EQ(pool.in_use(), 2u);
  pool.Free(a);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_NE(pool.Alloc(), BpfObjPool<Item>::kNil);  // recycled
}

TEST(BpfList, PushPopFifo) {
  BpfObjPool<Item> pool(16);
  BpfSpinLock lock;
  BpfList<Item> list;
  for (u64 i = 0; i < 5; ++i) {
    ASSERT_TRUE(list.PushBack(pool, lock, {i}));
  }
  EXPECT_EQ(list.size(), 5u);
  for (u64 i = 0; i < 5; ++i) {
    Item out{};
    ASSERT_TRUE(list.PopFront(pool, lock, &out));
    EXPECT_EQ(out.value, i);
  }
  EXPECT_TRUE(list.Empty());
  Item out{};
  EXPECT_FALSE(list.PopFront(pool, lock, &out));
}

TEST(BpfList, PushFrontPopBackActsAsQueueReversed) {
  BpfObjPool<Item> pool(16);
  BpfSpinLock lock;
  BpfList<Item> list;
  for (u64 i = 0; i < 4; ++i) {
    ASSERT_TRUE(list.PushFront(pool, lock, {i}));
  }
  for (u64 i = 0; i < 4; ++i) {
    Item out{};
    ASSERT_TRUE(list.PopBack(pool, lock, &out));
    EXPECT_EQ(out.value, i);
  }
}

TEST(BpfList, PoolExhaustionFailsPush) {
  BpfObjPool<Item> pool(2);
  BpfSpinLock lock;
  BpfList<Item> list;
  EXPECT_TRUE(list.PushBack(pool, lock, {1}));
  EXPECT_TRUE(list.PushBack(pool, lock, {2}));
  EXPECT_FALSE(list.PushBack(pool, lock, {3}));
  EXPECT_EQ(list.size(), 2u);
}

TEST(BpfList, MultipleListsShareOnePool) {
  BpfObjPool<Item> pool(4);
  BpfSpinLock lock_a, lock_b;
  BpfList<Item> a, b;
  EXPECT_TRUE(a.PushBack(pool, lock_a, {1}));
  EXPECT_TRUE(b.PushBack(pool, lock_b, {2}));
  EXPECT_TRUE(a.PushBack(pool, lock_a, {3}));
  EXPECT_TRUE(b.PushBack(pool, lock_b, {4}));
  EXPECT_FALSE(a.PushBack(pool, lock_a, {5}));
  Item out{};
  ASSERT_TRUE(b.PopFront(pool, lock_b, &out));
  EXPECT_EQ(out.value, 2u);
  EXPECT_TRUE(a.PushBack(pool, lock_a, {5}));  // freed capacity is shared
}

TEST(BpfList, LockReleasedAfterEveryOperation) {
  BpfObjPool<Item> pool(4);
  BpfSpinLock lock;
  BpfList<Item> list;
  list.PushBack(pool, lock, {1});
  EXPECT_FALSE(lock.IsLocked());
  Item out{};
  list.PopFront(pool, lock, &out);
  EXPECT_FALSE(lock.IsLocked());
  list.PopFront(pool, lock, &out);  // empty pop still unlocks
  EXPECT_FALSE(lock.IsLocked());
}

TEST(BpfSpinLock, LockUnlock) {
  BpfSpinLock lock;
  EXPECT_FALSE(lock.IsLocked());
  lock.Lock();
  EXPECT_TRUE(lock.IsLocked());
  lock.Unlock();
  EXPECT_FALSE(lock.IsLocked());
}

TEST(BpfList, MatchesDequeModelUnderRandomOps) {
  BpfObjPool<Item> pool(128);
  BpfSpinLock lock;
  BpfList<Item> list;
  std::deque<u64> model;
  pktgen::Rng rng(606);
  for (int step = 0; step < 20000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0: {
        const u64 v = rng.NextU64();
        if (list.PushBack(pool, lock, {v})) {
          model.push_back(v);
        } else {
          ASSERT_EQ(model.size(), 128u);
        }
        break;
      }
      case 1: {
        const u64 v = rng.NextU64();
        if (list.PushFront(pool, lock, {v})) {
          model.push_front(v);
        } else {
          ASSERT_EQ(model.size(), 128u);
        }
        break;
      }
      case 2: {
        Item out{};
        const bool ok = list.PopFront(pool, lock, &out);
        ASSERT_EQ(ok, !model.empty());
        if (ok) {
          ASSERT_EQ(out.value, model.front());
          model.pop_front();
        }
        break;
      }
      default: {
        Item out{};
        const bool ok = list.PopBack(pool, lock, &out);
        ASSERT_EQ(ok, !model.empty());
        if (ok) {
          ASSERT_EQ(out.value, model.back());
          model.pop_back();
        }
        break;
      }
    }
    ASSERT_EQ(list.size(), model.size());
    ASSERT_EQ(pool.in_use(), model.size());
  }
}

}  // namespace
}  // namespace ebpf
