// Tests for the live-reconfiguration control plane (nf/reconfig.h): NF hot
// swap through the registry (typed error taxonomy, state transfer,
// dual-write shadow warm-up), structural chain edits at quiescent points,
// rollback bit-identity under injected commit/state-transfer faults (fused
// program untouched, generation unchanged), connection affinity across a
// Katran backend-set swap, obs control events, and the epoch-guard
// serialization of a datapath thread against a control thread (TSan's
// target).
#include "nf/reconfig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/app_chains.h"
#include "apps/katran_lb.h"
#include "core/fault_injector.h"
#include "nf/chain.h"
#include "nf/heavykeeper.h"
#include "nf/nf_registry.h"
#include "obs/telemetry.h"
#include "pktgen/flowgen.h"

namespace nf {
namespace {

const BenchEnv& Env() {
  static const BenchEnv env = MakeDefaultBenchEnv();
  return env;
}

std::vector<std::string> StageNames(u32 length) {
  static const char* kCycle[] = {"cuckoo-filter", "vbf-membership"};
  std::vector<std::string> names;
  for (u32 i = 0; i < length; ++i) {
    names.push_back(kCycle[i % 2]);
  }
  return names;
}

ebpf::XdpContext ContextFor(pktgen::Packet& packet) {
  return ebpf::XdpContext{packet.frame, packet.frame + ebpf::kFrameSize, 0};
}

std::unique_ptr<ChainExecutor> MakeChain(const std::vector<std::string>& names,
                                         Variant v, bool fused) {
  auto chain = MakeBenchChain(names, v, Env());
  if (chain != nullptr && fused) {
    chain->EnableFusion();
    if (!chain->TryPromoteNow()) {
      return nullptr;
    }
  }
  return chain;
}

// Bit-identical primed twin of a bench-chain stage: MakeBenchChain builds
// every stage through MakeVariantSetup, which reseeds the prandom helper, so
// a fresh setup of the same entry is byte-for-byte the stage as loaded.
std::unique_ptr<NetworkFunction> MakeTwin(const std::string& name, Variant v) {
  const NfEntry* entry = NfRegistry::Global().Lookup(name);
  if (entry == nullptr) {
    return nullptr;
  }
  return MakeVariantSetup(*entry, v, Env()).nf;
}

std::vector<pktgen::Packet> MakeMix(u32 first_flow, u32 flow_count,
                                    u32 packets, u32 seed) {
  const std::vector<ebpf::FiveTuple> flows(
      Env().flows.begin() + first_flow,
      Env().flows.begin() + first_flow + flow_count);
  const pktgen::Trace trace = pktgen::MakeUniformTrace(flows, packets, seed);
  return std::vector<pktgen::Packet>(trace.begin(), trace.begin() + packets);
}

// Drives the plane over `pkts` in bursts of `burst`; deep-copies the packets
// so frame state never leaks between runs of twins.
std::vector<ebpf::XdpAction> RunPlane(ChainReconfig& plane,
                                      const std::vector<pktgen::Packet>& pkts,
                                      u32 burst) {
  std::vector<pktgen::Packet> copies = pkts;
  std::vector<ebpf::XdpAction> verdicts(copies.size());
  std::vector<ebpf::XdpContext> ctxs(copies.size());
  for (std::size_t i = 0; i < copies.size(); ++i) {
    ctxs[i] = ContextFor(copies[i]);
  }
  for (std::size_t base = 0; base < copies.size(); base += burst) {
    const u32 n =
        static_cast<u32>(std::min<std::size_t>(burst, copies.size() - base));
    plane.ProcessBurst(ctxs.data() + base, n, verdicts.data() + base);
  }
  return verdicts;
}

std::vector<ebpf::XdpAction> RunChain(ChainExecutor& chain,
                                      const std::vector<pktgen::Packet>& pkts,
                                      u32 burst) {
  std::vector<pktgen::Packet> copies = pkts;
  std::vector<ebpf::XdpAction> verdicts(copies.size());
  std::vector<ebpf::XdpContext> ctxs(copies.size());
  for (std::size_t i = 0; i < copies.size(); ++i) {
    ctxs[i] = ContextFor(copies[i]);
  }
  for (std::size_t base = 0; base < copies.size(); base += burst) {
    const u32 n =
        static_cast<u32>(std::min<std::size_t>(burst, copies.size() - base));
    chain.ProcessBurst(ctxs.data() + base, n, verdicts.data() + base);
  }
  return verdicts;
}

// Fault-point tests share the global injector; always start and end clean.
class Reconfig : public ::testing::Test {
 protected:
  void SetUp() override { enetstl::FaultInjector::Global().Reset(); }
  void TearDown() override { enetstl::FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Typed error taxonomy
// ---------------------------------------------------------------------------

TEST_F(Reconfig, SwapNfSurfacesRegistryErrorsWithBenchWording) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);

  ReconfigResult unknown = plane.SwapNf("no-such-nf", Variant::kEnetstl);
  EXPECT_EQ(unknown.error, ReconfigError::kUnknownNf);
  EXPECT_NE(unknown.message.find("unknown NF 'no-such-nf'"),
            std::string::npos)
      << unknown.message;
  EXPECT_NE(unknown.message.find("registered NFs:"), std::string::npos)
      << unknown.message;

  // skiplist-kv has no pure-eBPF build (P1): construction fails before any
  // stage lookup, with the registry's variant message.
  ReconfigResult variant = plane.SwapNf("skiplist-kv", Variant::kEbpf);
  EXPECT_EQ(variant.error, ReconfigError::kUnsupportedVariant);
  EXPECT_NE(variant.message.find("skiplist-kv"), std::string::npos)
      << variant.message;

  // Constructible NF, but no stage of that name in this chain.
  ReconfigResult stage = plane.SwapNf("heavykeeper", Variant::kEnetstl);
  EXPECT_EQ(stage.error, ReconfigError::kBadStage);
  EXPECT_NE(stage.message.find("heavykeeper"), std::string::npos)
      << stage.message;

  EXPECT_EQ(plane.stats().swaps_committed, 0u);
  EXPECT_EQ(plane.stats().epoch, 0u);
  // The chain is untouched and runnable after every rejection.
  const std::vector<pktgen::Packet> pkts = MakeMix(0, 2048, 64, 3);
  EXPECT_EQ(RunPlane(plane, pkts, 32).size(), pkts.size());
}

TEST_F(Reconfig, ErrorNamesCoverTheTaxonomy) {
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kOk), "ok");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kUnknownNf), "unknown-nf");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kUnsupportedVariant),
            "unsupported-variant");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kBadStage), "bad-stage");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kBudgetExceeded),
            "budget-exceeded");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kVerifyFailed), "verify-failed");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kCommitFault), "commit-fault");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kStateTransferFailed),
            "state-transfer-failed");
  EXPECT_EQ(ReconfigErrorName(ReconfigError::kEditPending), "edit-pending");
}

// ---------------------------------------------------------------------------
// Hot swap: twin replacement, shadow warm-up, state transfer
// ---------------------------------------------------------------------------

// Swapping a stage for its bit-identical primed twin must not change a
// single verdict against an untouched oracle — the zero-divergence core of
// the chaos harness, pinned here in isolation.
TEST_F(Reconfig, TwinSwapIsVerdictInvisible) {
  const std::vector<std::string> names = StageNames(3);
  auto chain = MakeChain(names, Variant::kEnetstl, false);
  auto oracle = MakeChain(names, Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ASSERT_NE(oracle, nullptr);
  ChainReconfig plane(*chain);

  const std::vector<pktgen::Packet> pkts = MakeMix(1024, 3000, 256, 17);
  const std::vector<ebpf::XdpAction> before = RunPlane(plane, pkts, 32);
  const std::vector<ebpf::XdpAction> oracle_before =
      RunChain(*oracle, pkts, 32);
  ASSERT_EQ(before, oracle_before);

  SwapOptions now;
  now.warmup_bursts = 0;  // membership stages have no state transfer
  auto twin = MakeTwin("vbf-membership", Variant::kEnetstl);
  ASSERT_NE(twin, nullptr);
  ASSERT_TRUE(plane.SwapNfWith("vbf-membership", std::move(twin), now).ok());
  EXPECT_EQ(plane.stats().swaps_committed, 1u);
  EXPECT_EQ(plane.stats().epoch, 1u);
  EXPECT_GT(plane.stats().last_swap_ns, 0u);

  const std::vector<ebpf::XdpAction> after = RunPlane(plane, pkts, 32);
  EXPECT_EQ(after, RunChain(*oracle, pkts, 32));
}

TEST_F(Reconfig, ShadowWarmupCommitsAtTheBurstBoundary) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);
  const std::vector<pktgen::Packet> pkts = MakeMix(0, 2048, 32, 23);

  // Membership NFs export no state, so the swap stages a 3-burst dual-write
  // warm-up instead of committing inline.
  SwapOptions options;
  options.warmup_bursts = 3;
  auto twin = MakeTwin("cuckoo-filter", Variant::kEnetstl);
  ASSERT_NE(twin, nullptr);
  ASSERT_TRUE(
      plane.SwapNfWith("cuckoo-filter", std::move(twin), options).ok());
  EXPECT_TRUE(plane.swap_pending());
  EXPECT_EQ(plane.stats().swaps_committed, 0u);

  // A second control op while the swap is warming is refused, typed.
  EXPECT_EQ(plane.SwapNf("vbf-membership", Variant::kEnetstl).error,
            ReconfigError::kEditPending);
  EXPECT_EQ(plane.InsertStage(0, std::make_unique<PassthroughTap>()).error,
            ReconfigError::kEditPending);
  EXPECT_EQ(plane.RemoveStage(0).error, ReconfigError::kEditPending);

  (void)RunPlane(plane, pkts, 32);  // warm-up burst 1
  EXPECT_TRUE(plane.swap_pending());
  (void)RunPlane(plane, pkts, 32);  // burst 2
  EXPECT_TRUE(plane.swap_pending());
  (void)RunPlane(plane, pkts, 32);  // burst 3: warm-up drains, swap commits
  EXPECT_FALSE(plane.swap_pending());

  const ReconfigStats stats = plane.stats();
  EXPECT_EQ(stats.swaps_committed, 1u);
  EXPECT_EQ(stats.shadow_bursts, 3u);
  EXPECT_EQ(stats.shadow_packets, 3u * 32u);
  EXPECT_EQ(stats.epoch, 1u);
  // Post-commit the plane accepts control ops again.
  EXPECT_TRUE(plane.SwapNfWith("cuckoo-filter",
                               MakeTwin("cuckoo-filter", Variant::kEnetstl),
                               SwapOptions{0, true})
                  .ok());
}

// The Figure-7 integration case live: a Katran backend-set change hot-swaps
// a new KatranLb in, and recorded connections keep their old backend through
// the state transfer (Katran's connection-affinity contract) while fresh
// connections land on the new ring. Exercised on both cores — the blob
// format is family-owned, so an origin-core table imports into an
// eNetSTL-core replacement unchanged.
TEST_F(Reconfig, KatranBackendSwapPreservesConnectionAffinity) {
  apps::RegisterAppNfs();
  for (const apps::CoreKind core :
       {apps::CoreKind::kOrigin, apps::CoreKind::kEnetstl}) {
    ChainExecutor chain("lb");
    apps::KatranConfig config;
    chain.AddStage(std::make_unique<apps::KatranLb>(core, config));
    ASSERT_TRUE(chain.Load().ok);
    ChainReconfig plane(chain);

    auto* lb = dynamic_cast<apps::KatranLb*>(&chain.stage(0));
    ASSERT_NE(lb, nullptr);
    // Record connections for the first 512 flows on the old backend set.
    std::vector<u32> old_backend(512);
    for (u32 f = 0; f < 512; ++f) {
      old_backend[f] = lb->PickBackend(Env().flows[f]);
      EXPECT_LT(old_backend[f], config.num_backends);
    }

    // Swap to a disjoint backend-id set {100..115}.
    std::vector<u32> backends(16);
    for (u32 b = 0; b < 16; ++b) {
      backends[b] = 100 + b;
    }
    const ReconfigResult result = apps::SwapLbBackends(plane, backends);
    ASSERT_TRUE(result.ok()) << result.message;
    EXPECT_EQ(plane.stats().swaps_committed, 1u);
    EXPECT_GT(plane.stats().state_bytes, 0u);
    EXPECT_FALSE(plane.swap_pending()) << "state transfer commits inline";

    auto* swapped = dynamic_cast<apps::KatranLb*>(&chain.stage(0));
    ASSERT_NE(swapped, nullptr);
    ASSERT_NE(swapped, lb) << "stage instance was replaced";
    EXPECT_EQ(swapped->config().backends, backends);
    // Affinity: every recorded connection still hits its old backend...
    const u64 hits_before = swapped->hits();
    for (u32 f = 0; f < 512; ++f) {
      EXPECT_EQ(swapped->PickBackend(Env().flows[f]), old_backend[f]) << f;
    }
    EXPECT_EQ(swapped->hits(), hits_before + 512);
    // ...while a fresh connection lands on the new ring.
    EXPECT_GE(swapped->PickBackend(Env().flows[4000]), 100u);
  }
}

TEST_F(Reconfig, HeavyKeeperSwapPreservesTopK) {
  // The heavykeeper family owns a variant-agnostic state blob (geometry
  // header + buckets + top-k tables), so a hot swap commits inline via state
  // transfer and the replacement's top-K set — flows and estimates — is
  // identical to the exporter's, whatever the variant pairing. Bucket-level
  // Query estimates additionally survive when the pairing shares a hash
  // layout (same-variant swap).
  const std::pair<Variant, Variant> pairings[] = {
      {Variant::kEnetstl, Variant::kEnetstl},
      {Variant::kEnetstl, Variant::kEbpf},
      {Variant::kEbpf, Variant::kKernel},
      {Variant::kKernel, Variant::kEnetstl},
  };
  for (const auto& [from, to] : pairings) {
    SCOPED_TRACE(std::string(VariantName(from)) + " -> " +
                 std::string(VariantName(to)));
    // Build the initial stage through the same registry factory SwapNf uses,
    // so exporter and replacement share sketch geometry.
    NfCreateResult built = NfRegistry::Global().CreateChecked(
        "heavykeeper", from);
    ASSERT_TRUE(built.ok()) << built.message;
    ChainExecutor chain("hk");
    chain.AddStage(std::move(built.nf));
    ASSERT_TRUE(chain.Load().ok);
    ChainReconfig plane(chain);

    // Skewed traffic so a distinctive top-K table forms.
    const std::vector<ebpf::FiveTuple> flows(Env().flows.begin(),
                                             Env().flows.begin() + 1024);
    const pktgen::Trace trace = pktgen::MakeZipfTrace(flows, 8192, 1.2, 71);
    RunPlane(plane,
             std::vector<pktgen::Packet>(trace.begin(), trace.end()), 64);

    auto* before = dynamic_cast<HeavyKeeperBase*>(&chain.stage(0));
    ASSERT_NE(before, nullptr);
    const std::vector<HkTopEntry> top_before = before->TopK();
    u32 populated = 0;
    for (const HkTopEntry& e : top_before) {
      populated += e.est > 0 ? 1 : 0;
    }
    ASSERT_GT(populated, 0u) << "top-K table never filled";
    std::vector<u32> est_before(64);
    for (u32 f = 0; f < 64; ++f) {
      est_before[f] = before->Query(&flows[f], sizeof(flows[f]));
    }

    const ReconfigResult result = plane.SwapNf("heavykeeper", to);
    ASSERT_TRUE(result.ok()) << result.message;
    EXPECT_EQ(plane.stats().swaps_committed, 1u);
    EXPECT_GT(plane.stats().state_bytes, 0u);
    EXPECT_FALSE(plane.swap_pending()) << "state transfer commits inline";
    EXPECT_EQ(plane.stats().shadow_bursts, 0u)
        << "state transfer replaces dual-write warm-up";

    auto* after = dynamic_cast<HeavyKeeperBase*>(&chain.stage(0));
    ASSERT_NE(after, nullptr);
    ASSERT_NE(after, before) << "stage instance was replaced";
    EXPECT_EQ(after->variant(), to);
    const std::vector<HkTopEntry> top_after = after->TopK();
    ASSERT_EQ(top_after.size(), top_before.size());
    for (std::size_t i = 0; i < top_before.size(); ++i) {
      EXPECT_EQ(top_after[i].flow, top_before[i].flow) << "slot " << i;
      EXPECT_EQ(top_after[i].est, top_before[i].est) << "slot " << i;
    }
    if (from == to) {
      for (u32 f = 0; f < 64; ++f) {
        EXPECT_EQ(after->Query(&flows[f], sizeof(flows[f])), est_before[f])
            << "flow " << f;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rollback bit-identity under injected faults
// ---------------------------------------------------------------------------

TEST_F(Reconfig, StateTransferFaultRollsBackUntouched) {
  apps::RegisterAppNfs();
  ChainExecutor chain("lb");
  chain.AddStage(
      std::make_unique<apps::KatranLb>(apps::CoreKind::kEnetstl,
                                       apps::KatranConfig{}));
  ASSERT_TRUE(chain.Load().ok);
  ChainReconfig plane(chain);
  auto* lb = dynamic_cast<apps::KatranLb*>(&chain.stage(0));
  const u32 backend = lb->PickBackend(Env().flows[0]);

  enetstl::FaultInjector::Global().ArmOneShot("reconfig.state_transfer", 0);
  const ReconfigResult result =
      apps::SwapLbBackends(plane, std::vector<u32>{7, 8, 9});
  EXPECT_EQ(result.error, ReconfigError::kStateTransferFailed);
  EXPECT_EQ(plane.stats().swaps_rolled_back, 1u);
  EXPECT_EQ(plane.stats().swaps_committed, 0u);
  EXPECT_EQ(plane.stats().epoch, 0u);
  // Same instance, same recorded connection.
  ASSERT_EQ(dynamic_cast<apps::KatranLb*>(&chain.stage(0)), lb);
  EXPECT_EQ(lb->PickBackend(Env().flows[0]), backend);

  // Disarmed, the identical request commits.
  EXPECT_TRUE(apps::SwapLbBackends(plane, std::vector<u32>{7, 8, 9}).ok());
}

// A commit fault (either the plane's own swap-commit point or the
// prog-array slot update under it) must leave the chain bit-identical —
// including a live fused program and its generation counter.
TEST_F(Reconfig, CommitFaultRollsBackWithFusedProgramIntact) {
  for (const char* point : {"reconfig.swap_commit",
                            "helper.prog_array_update"}) {
    enetstl::FaultInjector::Global().Reset();
    const std::vector<std::string> names = StageNames(3);
    auto chain = MakeChain(names, Variant::kEnetstl, true);
    auto oracle = MakeChain(names, Variant::kEnetstl, true);
    ASSERT_NE(chain, nullptr) << point;
    ASSERT_NE(oracle, nullptr) << point;
    ChainReconfig plane(*chain);
    const u32 gen_before = chain->fusion_stats().generation;

    enetstl::FaultInjector::Global().ArmOneShot(point, 0);
    SwapOptions now;
    now.warmup_bursts = 0;
    const ReconfigResult result = plane.SwapNfWith(
        "cuckoo-filter", MakeTwin("cuckoo-filter", Variant::kEnetstl), now);
    EXPECT_EQ(result.error, ReconfigError::kCommitFault) << point;
    EXPECT_EQ(plane.stats().swaps_rolled_back, 1u) << point;
    EXPECT_EQ(plane.stats().epoch, 0u) << point;

    // Bit-identity: still fused, same generation, and the next bursts match
    // an untouched fused twin verdict for verdict.
    EXPECT_TRUE(chain->fused()) << point;
    EXPECT_EQ(chain->fusion_stats().generation, gen_before) << point;
    EXPECT_EQ(chain->fusion_stats().demotions, 0u) << point;
    const std::vector<pktgen::Packet> pkts = MakeMix(1024, 3000, 192, 29);
    EXPECT_EQ(RunPlane(plane, pkts, 32), RunChain(*oracle, pkts, 32))
        << point;
  }
}

// A staged (shadow warm-up) swap whose deferred commit faults is abandoned
// at the boundary: the chain keeps running the old stage, typed stats only.
TEST_F(Reconfig, ShadowCommitFaultAbandonsTheStagedSwap) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);
  NetworkFunction* const original = &chain->stage(0);

  SwapOptions options;
  options.warmup_bursts = 1;
  ASSERT_TRUE(plane
                  .SwapNfWith("cuckoo-filter",
                              MakeTwin("cuckoo-filter", Variant::kEnetstl),
                              options)
                  .ok());
  enetstl::FaultInjector::Global().ArmOneShot("reconfig.swap_commit", 0);
  const std::vector<pktgen::Packet> pkts = MakeMix(0, 2048, 32, 31);
  (void)RunPlane(plane, pkts, 32);  // warm-up drains; commit faults
  EXPECT_FALSE(plane.swap_pending());
  EXPECT_EQ(plane.stats().swaps_committed, 0u);
  EXPECT_EQ(plane.stats().swaps_rolled_back, 1u);
  EXPECT_EQ(&chain->stage(0), original);
  EXPECT_EQ(RunPlane(plane, pkts, 32).size(), pkts.size());
}

// ---------------------------------------------------------------------------
// Structural edits: insert / remove under load
// ---------------------------------------------------------------------------

TEST_F(Reconfig, TapInsertAndRemoveAreVerdictTransparent) {
  const std::vector<std::string> names = StageNames(3);
  auto chain = MakeChain(names, Variant::kEnetstl, false);
  auto oracle = MakeChain(names, Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ASSERT_NE(oracle, nullptr);
  ChainReconfig plane(*chain);
  const std::vector<pktgen::Packet> pkts = MakeMix(1024, 3000, 256, 37);

  auto tap = std::make_unique<PassthroughTap>();
  PassthroughTap* const tap_ptr = tap.get();
  ASSERT_TRUE(plane.InsertStage(1, std::move(tap)).ok());
  ASSERT_EQ(chain->depth(), 4u);
  EXPECT_EQ(chain->stage(1).name(), "tap");
  EXPECT_EQ(plane.stats().inserts, 1u);

  // The tap forwards everything, so verdicts match the unedited oracle, and
  // its counter observes exactly the survivors of stage 0.
  const std::vector<ebpf::XdpAction> edited = RunPlane(plane, pkts, 32);
  EXPECT_EQ(edited, RunChain(*oracle, pkts, 32));
  EXPECT_EQ(tap_ptr->packets(), chain->stage_stats()[0].pass);
  EXPECT_EQ(chain->stage_stats()[1].in, chain->stage_stats()[1].pass);

  ASSERT_TRUE(plane.RemoveStage(1).ok());
  ASSERT_EQ(chain->depth(), 3u);
  EXPECT_EQ(plane.stats().removes, 1u);
  EXPECT_EQ(plane.stats().epoch, 2u);
  EXPECT_EQ(RunPlane(plane, pkts, 32), RunChain(*oracle, pkts, 32));
}

TEST_F(Reconfig, EditsDemoteAFusedChain) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, true);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);
  ASSERT_TRUE(chain->fused());
  ASSERT_TRUE(plane.InsertStage(2, std::make_unique<PassthroughTap>()).ok());
  EXPECT_FALSE(chain->fused()) << "structural edit demotes";
  EXPECT_EQ(chain->fusion_stats().demotions, 1u);
  // Re-promotion folds the edited shape and stays runnable.
  ASSERT_TRUE(chain->TryPromoteNow());
  const std::vector<pktgen::Packet> pkts = MakeMix(0, 2048, 64, 41);
  EXPECT_EQ(RunPlane(plane, pkts, 32).size(), pkts.size());
}

TEST_F(Reconfig, EditValidationIsTypedAndCommitsNothing) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);

  EXPECT_EQ(plane.InsertStage(99, std::make_unique<PassthroughTap>()).error,
            ReconfigError::kBadStage);
  EXPECT_EQ(plane.InsertStage(0, nullptr).error, ReconfigError::kBadStage);
  EXPECT_EQ(plane.RemoveStage(99).error, ReconfigError::kBadStage);
  EXPECT_EQ(chain->depth(), 2u);
  EXPECT_EQ(plane.stats().epoch, 0u);

  // Tail-call budget: a 33-stage chain refuses a 34th, typed, pre-build.
  ChainExecutor deep("deep-33");
  for (u32 i = 0; i < ebpf::kMaxTailCallChain; ++i) {
    deep.AddStage(std::make_unique<PassthroughTap>());
  }
  ASSERT_TRUE(deep.Load().ok);
  ChainReconfig deep_plane(deep);
  EXPECT_EQ(
      deep_plane.InsertStage(0, std::make_unique<PassthroughTap>()).error,
      ReconfigError::kBudgetExceeded);
  EXPECT_EQ(deep.depth(), ebpf::kMaxTailCallChain);

  // Depth-1 chains cannot lose their only stage.
  ChainExecutor single("single");
  single.AddStage(std::make_unique<PassthroughTap>());
  ASSERT_TRUE(single.Load().ok);
  ChainReconfig single_plane(single);
  EXPECT_EQ(single_plane.RemoveStage(0).error, ReconfigError::kBadStage);
  EXPECT_EQ(single.depth(), 1u);
}

// ---------------------------------------------------------------------------
// Obs control events
// ---------------------------------------------------------------------------

TEST_F(Reconfig, ControlOperationsEmitTypedObsEvents) {
  if constexpr (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::Telemetry& telemetry = obs::Telemetry::Global();
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, false);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);
  const obs::u16 scope = telemetry.RegisterScope("chain/reconfig");
  const u64 controls_before = telemetry.control_events();

  telemetry.Enable(1);
  telemetry.ring().Consume([](const void*, ebpf::u32) {});  // drain
  SwapOptions now;
  now.warmup_bursts = 0;
  ASSERT_TRUE(plane
                  .SwapNfWith("cuckoo-filter",
                              MakeTwin("cuckoo-filter", Variant::kEnetstl),
                              now)
                  .ok());
  ASSERT_TRUE(plane.InsertStage(2, std::make_unique<PassthroughTap>()).ok());
  ASSERT_TRUE(plane.RemoveStage(2).ok());
  enetstl::FaultInjector::Global().ArmOneShot("reconfig.swap_commit", 0);
  ASSERT_FALSE(plane
                   .SwapNfWith("cuckoo-filter",
                               MakeTwin("cuckoo-filter", Variant::kEnetstl),
                               now)
                   .ok());
  telemetry.Disable();

  std::vector<u32> codes;
  telemetry.ring().Consume([&](const void* data, ebpf::u32 len) {
    if (len != sizeof(obs::ObsEvent)) {
      return;
    }
    obs::ObsEvent event;
    std::memcpy(&event, data, sizeof(event));
    if (event.kind == obs::ObsEvent::kControl && event.scope == scope) {
      codes.push_back(event.flow);
    }
  });
  const std::vector<u32> expected = {
      kReconfigSwapBeginCode,  kReconfigSwapCommitCode, kReconfigInsertCode,
      kReconfigRemoveCode,     kReconfigSwapBeginCode,
      kReconfigSwapRollbackCode};
  EXPECT_EQ(codes, expected);
  EXPECT_EQ(telemetry.control_events(), controls_before + expected.size());
}

// ---------------------------------------------------------------------------
// Epoch-guard serialization (the TSan target)
// ---------------------------------------------------------------------------

// A datapath thread bursting through the plane races a control thread firing
// twin swaps and tap insert/remove cycles. The epoch guard must serialize
// them at burst boundaries: every burst's verdict buffer is fully written
// (no sentinel survives — zero loss), every control op lands or fails typed,
// and the executor never tears. TSan sees any mutation that escapes the
// guard; the fused demote-generation handshake is exercised by re-arming
// fusion after each swap.
TEST_F(Reconfig, DatapathAndControlThreadsSerializeAtBurstBoundaries) {
  constexpr u32 kBurstSize = 32;
  constexpr u32 kControlRounds = 8;
  auto chain = MakeChain(StageNames(3), Variant::kEnetstl, true);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);

  const std::vector<pktgen::Packet> pool = MakeMix(0, 4096, 512, 43);
  // The datapath runs until every control round has landed, so the race
  // window always covers real swaps/edits regardless of relative speed.
  std::atomic<bool> control_done{false};
  std::atomic<u64> sentinel_leaks{0};

  std::thread datapath([&] {
    constexpr auto kSentinel = static_cast<ebpf::XdpAction>(0xff);
    std::vector<pktgen::Packet> copies(kBurstSize);
    ebpf::XdpContext ctxs[kBurstSize];
    ebpf::XdpAction verdicts[kBurstSize];
    for (u64 b = 0; !control_done.load(std::memory_order_acquire); ++b) {
      for (u32 i = 0; i < kBurstSize; ++i) {
        copies[i] = pool[(b * kBurstSize + i) % pool.size()];
        ctxs[i] = ContextFor(copies[i]);
        verdicts[i] = kSentinel;
      }
      plane.ProcessBurst(ctxs, kBurstSize, verdicts);
      for (u32 i = 0; i < kBurstSize; ++i) {
        if (verdicts[i] == kSentinel) {
          ++sentinel_leaks;
        }
      }
    }
  });

  std::thread control([&] {
    for (u32 round = 0; round < kControlRounds; ++round) {
      SwapOptions options;
      options.warmup_bursts = round % 3;  // mix inline and shadowed commits
      (void)plane.SwapNfWith(
          "cuckoo-filter", MakeTwin("cuckoo-filter", Variant::kEnetstl),
          options);
      // Only undo an edit that actually landed: with a swap mid-warm-up the
      // insert is refused (kEditPending) and stage 1 is a real NF.
      if (plane.InsertStage(1, std::make_unique<PassthroughTap>()).ok()) {
        EXPECT_TRUE(plane.RemoveStage(1).ok());
      }
      (void)plane.SwapNf("no-such-nf", Variant::kEnetstl);  // typed miss
    }
    control_done.store(true, std::memory_order_release);
  });

  datapath.join();
  control.join();
  EXPECT_EQ(sentinel_leaks.load(), 0u) << "a burst lost packets";
  // The run must have actually exercised reconfiguration under load.
  const ReconfigStats stats = plane.stats();
  EXPECT_GT(stats.swaps_committed + stats.swaps_rolled_back, 0u);
  // And the chain is still coherent: one more quiet differential run.
  auto oracle = MakeChain(StageNames(3), Variant::kEnetstl, false);
  ASSERT_NE(oracle, nullptr);
  const std::vector<pktgen::Packet> pkts = MakeMix(1024, 2048, 128, 47);
  EXPECT_EQ(RunPlane(plane, pkts, 32), RunChain(*oracle, pkts, 32));
}

// Regression for the fused-snapshot fix: a demotion between chunks of one
// oversized burst is honored at the next chunk boundary, never mid-walk. A
// single ProcessBurst call larger than kMaxNfBurst runs chunk by chunk on
// the program it started on; the subsequent ReplaceStage demotes exactly
// once and the next oversized burst runs fully generic.
TEST_F(Reconfig, OversizedBurstRunsToCompletionAcrossDemotion) {
  auto chain = MakeChain(StageNames(2), Variant::kEnetstl, true);
  ASSERT_NE(chain, nullptr);
  ChainReconfig plane(*chain);
  const std::vector<pktgen::Packet> pkts =
      MakeMix(0, 2048, 3 * kMaxNfBurst + 7, 53);

  const std::vector<ebpf::XdpAction> fused_verdicts =
      RunPlane(plane, pkts, 3 * kMaxNfBurst + 7);
  ASSERT_TRUE(chain->fused());
  const u64 fused_bursts = chain->fusion_stats().fused_bursts;
  ASSERT_GT(fused_bursts, 0u);

  SwapOptions now;
  now.warmup_bursts = 0;
  ASSERT_TRUE(plane
                  .SwapNfWith("cuckoo-filter",
                              MakeTwin("cuckoo-filter", Variant::kEnetstl),
                              now)
                  .ok());
  EXPECT_FALSE(chain->fused());
  EXPECT_EQ(chain->fusion_stats().demotions, 1u);

  const std::vector<ebpf::XdpAction> generic_verdicts =
      RunPlane(plane, pkts, 3 * kMaxNfBurst + 7);
  EXPECT_EQ(chain->fusion_stats().fused_bursts, fused_bursts)
      << "post-demotion chunks must not touch the dead fused program";
  EXPECT_EQ(generic_verdicts, fused_verdicts)
      << "twin swap + demotion must not change verdicts";
}

}  // namespace
}  // namespace nf
