// Common interface every network-function variant implements, so tests,
// examples, and the measurement pipeline can drive eBPF / kernel / eNetSTL
// variants of one NF interchangeably.
#ifndef ENETSTL_NF_NF_INTERFACE_H_
#define ENETSTL_NF_NF_INTERFACE_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ebpf/program.h"
#include "pktgen/pipeline.h"

namespace nf {

using ebpf::s32;
using ebpf::u16;
using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

// Largest burst the batched NF interfaces accept per internal chunk; batched
// entry points split longer inputs. Matches the pipeline's burst ceiling so a
// pipeline burst is always one NF chunk.
inline constexpr u32 kMaxNfBurst = pktgen::kMaxBurstSize;

// The one input-splitting loop every batched entry point shares: invokes
// fn(start, chunk) over consecutive ranges [start, start+chunk) with
// chunk <= kMaxNfBurst, including the remainder tail. Batched overrides size
// their scratch arrays to kMaxNfBurst and rely on this for longer inputs.
template <typename Fn>
inline void ForEachNfChunk(u32 count, Fn&& fn) {
  for (u32 start = 0; start < count; start += kMaxNfBurst) {
    const u32 remaining = count - start;
    fn(start, remaining < kMaxNfBurst ? remaining : kMaxNfBurst);
  }
}

// Which execution model an NF implementation targets.
enum class Variant {
  kEbpf,     // pure eBPF: scalar code, helper-call boundary, BPF maps/lists
  kKernel,   // native in-kernel baseline: no boundary, full instruction set
  kEnetstl,  // eBPF program using eNetSTL kfuncs for the hot operations
};

inline std::string_view VariantName(Variant v) {
  switch (v) {
    case Variant::kEbpf:
      return "eBPF";
    case Variant::kKernel:
      return "Kernel";
    case Variant::kEnetstl:
      return "eNetSTL";
  }
  return "?";
}

// Degradation bookkeeping shared by the cuckoo-family structures (see
// DESIGN.md "Robustness model"). A structure enters degraded mode when a
// kick-chain failure parks an entry in its victim stash; the stash watermark
// then triggers an incremental resize (where the layout permits one).
struct CuckooDegradeStats {
  u64 stash_parks = 0;       // entries parked in the victim stash
  u64 stash_drops = 0;       // entries lost because the stash was full
  u64 resizes_started = 0;
  u64 resizes_completed = 0;
  u64 units_migrated = 0;    // buckets (blocked tables) or slots (d-ary)
};

// Key-level lowering of a membership-style stage, produced by
// NetworkFunction::LowerToKeyOp() for the fused chain path (see
// nf/fused_chain.h). A stage that lowers declares that its scalar Process()
// is exactly: parse the 5-tuple (failure -> kAborted), then map
// contains(key) to kPass / !contains(key) to kDrop — so the fused executor
// can parse each packet once and drive the stage through a batched key op
// instead of re-entering the packet path per stage.
//
// Contract for `contains`:
//  * out[i] must equal the stage's scalar membership decision for keys[i],
//    for every i in [0, n) — bit-identical, including degraded paths
//    (victim stashes etc.).
//  * Side-effect free: no structure mutation, no packet access, no verdict
//    state. The fused executor may evaluate dead lanes (keys whose packet
//    already exited the chain) when the burst is dense, so the op must
//    tolerate arbitrary key values and its per-key cost must not depend on
//    chain history.
//  * n is at most kMaxNfBurst.
struct FusedKeyOp {
  std::function<void(const ebpf::FiveTuple* keys, u32 n, bool* out)> contains;
};

// Base class for packet-driven NFs.
class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  // Processes one packet (the XDP entry point of this NF).
  virtual ebpf::XdpAction Process(ebpf::XdpContext& ctx) = 0;

  // Processes a burst, writing one verdict per packet. The default is the
  // scalar loop — all a pure-eBPF program can express. Batched variants
  // override it with the two-stage (hash+prefetch, then probe) pipeline;
  // overrides must produce verdicts bit-identical to per-packet Process.
  virtual void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                            ebpf::XdpAction* verdicts) {
    for (u32 i = 0; i < count; ++i) {
      verdicts[i] = Process(ctxs[i]);
    }
  }

  // Key-level lowering hook for the fused chain executor. Stages whose
  // packet path is a pure parse-then-membership decision return a FusedKeyOp
  // honouring the contract above; everything else keeps the default
  // (nullopt), and the fused path falls back to ProcessBurst for that stage.
  virtual std::optional<FusedKeyOp> LowerToKeyOp() { return std::nullopt; }

  // --- Live-reconfiguration state transfer (nf/reconfig.h) ---
  //
  // An NF family that can serialize its live state for whole-NF hot swap
  // appends an opaque blob to `out` and returns true; the replacement
  // instance (same family, any variant — the blob format is owned by the
  // family, not the variant) restores it through ImportState before the swap
  // commits. Both default to unsupported, in which case the reconfig plane
  // falls back to bounded dual-write shadowing to warm the replacement.
  // Contract: ImportState(ExportState output) must reproduce every
  // externally observable decision the old instance would have made for live
  // entries (e.g. connection affinity); internal layout may differ.
  virtual bool ExportState(std::vector<u8>& out) const {
    (void)out;
    return false;
  }
  virtual bool ImportState(const u8* data, std::size_t len) {
    (void)data;
    (void)len;
    return false;
  }

  virtual std::string_view name() const = 0;
  virtual Variant variant() const = 0;

  // Non-owning adapters for the measurement pipeline. Both convert implicitly
  // to the pipeline's FunctionRef handler types at the call site; the NF must
  // outlive the measurement call (it always does — the adapters are passed as
  // temporaries within one full expression).
  struct ScalarAdapter {
    NetworkFunction* nf;
    ebpf::XdpAction operator()(ebpf::XdpContext& ctx) const {
      return nf->Process(ctx);
    }
  };
  struct BurstAdapter {
    NetworkFunction* nf;
    void operator()(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) const {
      nf->ProcessBurst(ctxs, count, verdicts);
    }
  };

  ScalarAdapter Handler() { return ScalarAdapter{this}; }
  BurstAdapter BurstHandler() { return BurstAdapter{this}; }
};

}  // namespace nf

#endif  // ENETSTL_NF_NF_INTERFACE_H_
