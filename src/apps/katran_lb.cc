#include "apps/katran_lb.h"

#include <cstddef>
#include <cstring>

#include "core/hash.h"
#include "obs/telemetry.h"

namespace apps {

std::vector<u32> BuildMaglevRing(const std::vector<u32>& backends,
                                 u32 ring_size, u32 seed) {
  constexpr u32 kUnset = 0xffffffffu;
  std::vector<u32> ring(ring_size, kUnset);
  if (backends.empty()) {
    return ring;
  }
  // Per-backend permutation parameters (offset, skip) from two hashes of
  // the backend identifier.
  struct Perm {
    u32 offset;
    u32 skip;
    u32 next = 0;  // how many permutation steps this backend has consumed
  };
  std::vector<Perm> perms;
  perms.reserve(backends.size());
  for (u32 backend : backends) {
    Perm p;
    p.offset = enetstl::XxHash32(&backend, sizeof(backend), seed) % ring_size;
    p.skip = enetstl::XxHash32(&backend, sizeof(backend), seed ^ 0x9e3779b9u) %
                 (ring_size - 1) +
             1;
    perms.push_back(p);
  }
  // Round-robin: each backend claims its next unclaimed permutation slot.
  u32 filled = 0;
  while (filled < ring_size) {
    for (std::size_t b = 0; b < backends.size() && filled < ring_size; ++b) {
      Perm& p = perms[b];
      u32 slot;
      do {
        slot = (p.offset + p.next * p.skip) % ring_size;
        ++p.next;
      } while (ring[slot] != kUnset);
      ring[slot] = backends[b];
      ++filled;
    }
  }
  return ring;
}

KatranLb::KatranLb(CoreKind core, const KatranConfig& config)
    : core_(core), config_(config) {
  std::vector<u32> backends = config.backends;
  if (backends.empty()) {
    backends.resize(config.num_backends);
    for (u32 b = 0; b < config.num_backends; ++b) {
      backends[b] = b;
    }
  }
  ring_ = BuildMaglevRing(backends, config.ring_size, config.seed);
  obs_scope_ = obs::Telemetry::Global().RegisterScope("app/katran-lb");
  // Both cores track connections through the shared conntrack engines. The
  // LB's virtual clock never advances (now = 0), so entries live until LRU
  // pressure or an explicit teardown — the original conn-table semantics.
  nf::FlowTableConfig ft;
  ft.max_flows = config.conn_table_size;
  ft.seed = config.seed;
  if (core_ == CoreKind::kOrigin) {
    lru_conn_ = std::make_unique<nf::LruFlowTable>(ft);
  } else {
    conn_ = std::make_unique<nf::FlowTable>(ft);
  }
}

u32 KatranLb::PickBackend(const ebpf::FiveTuple& tuple) {
  if (core_ == CoreKind::kOrigin) {
    // BPF LRU hash lookup (helper call).
    if (nf::CtFlowValue* v = lru_conn_->Find(tuple, 0)) {
      ++hits_;
      return v->value;
    }
    ++misses_;
    const u32 h = enetstl::XxHash32Bpf(&tuple, sizeof(tuple), config_.seed);
    const u32 backend = ring_[h % config_.ring_size];
    lru_conn_->Insert(tuple, nf::FlowTable::ReverseTuple(tuple), backend,
                      nf::FlowState::kEstablished, 0, 0, 0);
    return backend;
  }
  // eNetSTL core: arena-backed paired flow table + hardware CRC ring hash.
  u8 dir;
  u32 handle;
  if (nf::FlowEntry* e = conn_->Find(tuple, 0, &dir, &handle)) {
    ++hits_;
    return e->value;
  }
  ++misses_;
  const u32 h = enetstl::HwHashCrc(&tuple, sizeof(tuple), config_.seed);
  const u32 backend = ring_[h % config_.ring_size];
  conn_->Insert(tuple, nf::FlowTable::ReverseTuple(tuple), backend,
                nf::FlowState::kEstablished, 0, 0, 0, &handle);
  return backend;
}

bool KatranLb::ExportState(std::vector<ebpf::u8>& out) const {
  const auto append = [&out](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const ebpf::u8*>(p);
    out.insert(out.end(), bytes, bytes + n);
  };
  const std::size_t count_at = out.size();
  u32 count = 0;
  append(&count, sizeof(count));  // patched below
  const auto emit = [&](const ebpf::FiveTuple& tuple, u64 backend) {
    const u32 b = static_cast<u32>(backend);
    append(&tuple, sizeof(tuple));
    append(&b, sizeof(b));
    ++count;
  };
  if (core_ == CoreKind::kOrigin) {
    lru_conn_->ForEachForwardOldestFirst(
        [&](const ebpf::FiveTuple& tuple, const nf::CtFlowValue& v) {
          emit(tuple, v.value);
        });
  } else {
    conn_->ForEachLruOldestFirst(
        [&](const nf::FlowEntry& e) { emit(e.key[0], e.value); });
  }
  std::memcpy(out.data() + count_at, &count, sizeof(count));
  return true;
}

bool KatranLb::ImportState(const ebpf::u8* data, std::size_t len) {
  constexpr std::size_t kEntrySize = sizeof(ebpf::FiveTuple) + sizeof(u32);
  u32 count = 0;
  if (len < sizeof(count)) {
    return false;
  }
  std::memcpy(&count, data, sizeof(count));
  if (len != sizeof(count) + static_cast<std::size_t>(count) * kEntrySize) {
    return false;
  }
  const ebpf::u8* p = data + sizeof(count);
  for (u32 i = 0; i < count; ++i) {
    ebpf::FiveTuple tuple;
    u32 backend;
    std::memcpy(&tuple, p, sizeof(tuple));
    std::memcpy(&backend, p + sizeof(tuple), sizeof(backend));
    p += kEntrySize;
    // Replay through the normal record path: existing connections keep the
    // exported backend even if this instance's ring would pick differently
    // (connection affinity survives the backend-set change). Records arrive
    // oldest-first, so the replay reproduces LRU eviction order too.
    if (core_ == CoreKind::kOrigin) {
      lru_conn_->Insert(tuple, nf::FlowTable::ReverseTuple(tuple), backend,
                        nf::FlowState::kEstablished, 0, 0, 0);
    } else {
      u32 handle;
      conn_->Insert(tuple, nf::FlowTable::ReverseTuple(tuple), backend,
                    nf::FlowState::kEstablished, 0, 0, 0, &handle);
    }
  }
  return true;
}

ebpf::XdpAction KatranLb::Process(ebpf::XdpContext& ctx) {
  obs::ScalarSample sample(obs_scope_);
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return ebpf::XdpAction::kAborted;
  }
  if (sample.armed()) {
    sample.set_flow(tuple.src_ip);
  }
  (void)PickBackend(tuple);
  return ebpf::XdpAction::kTx;
}

void KatranLb::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                            ebpf::XdpAction* verdicts) {
  if (core_ == CoreKind::kOrigin) {
    // The BPF LRU hash has no batched lookup primitive; scalar loop (which
    // samples per packet through Process).
    nf::NetworkFunction::ProcessBurst(ctxs, count, verdicts);
    return;
  }
  // Burst-average attribution, as on the chain burst path: the batched core
  // bypasses Process, so the burst itself is the sampling unit.
  const bool sample_burst =
      obs::kCompiledIn && obs::Telemetry::Global().enabled();
  const u64 t0 = sample_burst ? ebpf::helpers::BpfKtimeGetNs() : 0;
  nf::ForEachNfChunk(count, [&](u32 start, u32 chunk) {
    ebpf::FiveTuple keys[nf::kMaxNfBurst];
    nf::FlowTable::Lookup looks[nf::kMaxNfBurst];
    u32 idx[nf::kMaxNfBurst];
    u32 parsed = 0;
    for (u32 i = 0; i < chunk; ++i) {
      if (ebpf::ParseFiveTuple(ctxs[start + i], &keys[parsed])) {
        idx[parsed++] = start + i;
      } else {
        verdicts[start + i] = ebpf::XdpAction::kAborted;
      }
    }
    // Batched two-stage paired probe over the whole burst; cached results
    // are trusted until the first in-burst insert bumps the mutation epoch.
    conn_->FindBatch(keys, parsed, 0, looks);
    const u64 epoch = conn_->mutation_epoch();
    for (u32 i = 0; i < parsed; ++i) {
      if (conn_->mutation_epoch() == epoch &&
          looks[i].kind == nf::FlowTable::Lookup::kHit) {
        ++hits_;
      } else {
        u8 dir;
        u32 handle;
        if (conn_->Find(keys[i], 0, &dir, &handle) != nullptr) {
          // A new flow repeated within the burst: an earlier miss already
          // recorded it, so per-packet semantics make this one a hit.
          ++hits_;
        } else {
          ++misses_;
          const u32 h = enetstl::HwHashCrc(&keys[i], sizeof(keys[i]),
                                           config_.seed);
          conn_->Insert(keys[i], nf::FlowTable::ReverseTuple(keys[i]),
                        ring_[h % config_.ring_size],
                        nf::FlowState::kEstablished, 0, 0, 0, &handle);
        }
      }
      verdicts[idx[i]] = ebpf::XdpAction::kTx;
    }
  });
  if (sample_burst) {
    obs::Telemetry::Global().RecordBurst(
        obs_scope_, ebpf::helpers::BpfKtimeGetNs() - t0, count,
        [&](u32 i) { return obs::FlowOf(ctxs[i]); });
  }
}

}  // namespace apps
