// §6.2 "Other cases": EDF load balancing, TSS packet classification,
// HeavyKeeper counting, and VBF membership testing under heavy
// configurations. Paper gains over eBPF: EDF +48.3%, TSS +26.7%,
// HeavyKeeper +30.0%, VBF +15.8%; kernel gaps 4.71% / 3.96% / 2.53% / 2.62%.
#include <memory>

#include "bench/bench_util.h"
#include "ebpf/helper.h"
#include "nf/efd.h"
#include "nf/heavykeeper.h"
#include "nf/tss.h"
#include "nf/vbf.h"

namespace {

using bench::u32;

void RunRow(const char* name, nf::NetworkFunction& e, nf::NetworkFunction& k,
            nf::NetworkFunction& s, const pktgen::Trace& trace) {
  const double em = bench::MeasureMpps(e.Handler(), trace);
  const double km = bench::MeasureMpps(k.Handler(), trace);
  const double sm = bench::MeasureMpps(s.Handler(), trace);
  bench::PrintSweepRow(name, em, km, sm);
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  bench::PrintHeader(
      "Sec 6.2 other cases: EDF, TSS, HeavyKeeper, VBF (heavy configs)");
  ebpf::helpers::SeedPrandom(0x777);
  const auto flows = pktgen::MakeFlowPopulation(4096, 61);
  const auto trace = pktgen::MakeZipfTrace(flows, 16384, 1.1, 62);
  bench::PrintSweepHeader("nf");

  {
    nf::EfdConfig config;
    config.num_groups = 1024;
    nf::EfdEbpf e(config);
    nf::EfdKernel k(config);
    nf::EfdEnetstl s(config);
    for (u32 i = 0; i < 2048; ++i) {
      const auto backend = static_cast<ebpf::u8>(i % 16);
      e.Insert(flows[i], backend);
      k.Insert(flows[i], backend);
      s.Insert(flows[i], backend);
    }
    RunRow("efd-lb", e, k, s, trace);
  }

  {
    nf::TssConfig config;
    config.buckets_per_tuple = 1024;
    nf::TssEbpf e(config);
    nf::TssKernel k(config);
    nf::TssEnetstl s(config);
    // 16 tuples x 64 rules, plus a default rule so every packet matches.
    pktgen::Rng rng(63);
    for (u32 t = 0; t < 16; ++t) {
      ebpf::FiveTuple mask{};
      mask.dst_port = 0xffff;
      mask.dst_ip = 0xffff0000u | t;
      for (u32 r = 0; r < 64; ++r) {
        ebpf::FiveTuple key = flows[rng.NextBounded(flows.size())];
        const nf::TssRule rule{key, mask, t * 100 + r, r};
        e.AddRule(rule);
        k.AddRule(rule);
        s.AddRule(rule);
      }
    }
    RunRow("tss-classify", e, k, s, trace);
  }

  {
    nf::HeavyKeeperConfig config;
    config.rows = 8;  // heavy configuration
    config.cols = 8192;
    config.topk = 32;
    nf::HeavyKeeperEbpf e(config);
    nf::HeavyKeeperKernel k(config);
    nf::HeavyKeeperEnetstl s(config);
    RunRow("heavykeeper", e, k, s, trace);
  }

  {
    nf::VbfConfig config;
    config.rows = 8;  // heavy configuration
    config.positions = 1u << 16;
    nf::VbfEbpf e(config);
    nf::VbfKernel k(config);
    nf::VbfEnetstl s(config);
    for (u32 i = 0; i < 2048; ++i) {
      const u32 set = i % 16;
      e.AddToSet(&flows[i], sizeof(flows[i]), set);
      k.AddToSet(&flows[i], sizeof(flows[i]), set);
      s.AddToSet(&flows[i], sizeof(flows[i]), set);
    }
    RunRow("vbf-member", e, k, s, trace);
  }

  std::printf(
      "-- paper: EDF +48.3%%, TSS +26.7%%, HeavyKeeper +30.0%%, VBF +15.8%% "
      "vs eBPF\n");
  return 0;
}
