#include "nf/dary_cuckoo.h"

#include "nf/nf_registry.h"

#include <cstring>

#include "core/fault_injector.h"
#include "core/hash.h"
#include "core/hash_inl.h"
#include "core/multihash_inl.h"
#include "core/post_hash.h"

namespace nf {

namespace {

constexpr u32 kSigSeedXor = 0x5f3759dfu;

// The signature is a shared scalar hash (same value in every variant, so the
// variants build identical tables and the equivalence tests can compare them
// slot for slot). Derived via Fmix32 so it does not correlate with the
// position lanes.
inline u32 MakeSig(const ebpf::FiveTuple& key, u32 seed) {
  const u32 sig = enetstl::Fmix32(
      enetstl::XxHash32(&key, sizeof(key), seed ^ kSigSeedXor));
  return sig == enetstl::kEmptySig ? 1u : sig;
}

inline void Positions(const ebpf::FiveTuple& key, u32 seed, u32 d, u32 mask,
                      u32 pos[8]) {
  alignas(32) u32 h[8];
  enetstl::internal::MultiHashImpl(&key, sizeof(key), seed, d, h);
  for (u32 r = 0; r < d; ++r) {
    pos[r] = h[r] & mask;
  }
}

inline bool KeyEquals(const DaryCuckooState& state, u32 pos,
                      const ebpf::FiveTuple& key) {
  return std::memcmp(state.keys[pos].data(), &key, 16) == 0;
}

inline void WriteSlot(DaryCuckooState& state, u32 pos, u32 sig,
                      const ebpf::FiveTuple& key, u64 value) {
  state.sigs[pos] = sig;
  std::memcpy(state.keys[pos].data(), &key, 16);
  state.values[pos] = value;
}

inline void ClearSlot(DaryCuckooState& state, u32 pos) {
  state.sigs[pos] = enetstl::kEmptySig;
  state.keys[pos].fill(0);
  state.values[pos] = 0;
}

DaryCuckooState MakeState(u32 num_slots) {
  DaryCuckooState state;
  state.sigs.assign(num_slots, enetstl::kEmptySig);
  state.keys.assign(num_slots, {});
  state.values.assign(num_slots, 0);
  return state;
}

struct DaryEntry {
  u32 sig;
  ebpf::FiveTuple key;
  u64 value;
};

// Places a NEW (not-resident) entry: empty candidate first, then a
// random-walk displacement. Returns true when the walk terminates in an
// empty slot with every displaced entry re-placed. When the walk exhausts
// max_kicks the original entry IS resident (the first swap wrote it);
// *leftover receives the final in-hand victim — a previously inserted
// entry the caller must park or consciously drop — and the function
// returns false. (Exception: with max_kicks == 0 and no empty candidate,
// *leftover is the original entry itself, still unplaced — parking it
// keeps the insert lossless either way.)
bool PlaceNew(DaryCuckooState& state, const DaryCuckooConfig& config,
              u32 mask, u64& rng, const DaryEntry& entry,
              DaryEntry* leftover) {
  u32 pos[8];
  Positions(entry.key, config.seed, config.d, mask, pos);
  for (u32 r = 0; r < config.d; ++r) {
    if (state.sigs[pos[r]] == enetstl::kEmptySig) {
      WriteSlot(state, pos[r], entry.sig, entry.key, entry.value);
      return true;
    }
  }

  DaryEntry in = entry;
  u32 in_pos[8];
  std::memcpy(in_pos, pos, sizeof(in_pos));
  for (u32 kick = 0; kick < config.max_kicks; ++kick) {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    const u32 victim_pos = in_pos[static_cast<u32>(rng) % config.d];
    // Swap the in-hand entry with the victim.
    DaryEntry victim;
    std::memcpy(&victim.key, state.keys[victim_pos].data(), 16);
    victim.value = state.values[victim_pos];
    victim.sig = state.sigs[victim_pos];
    WriteSlot(state, victim_pos, in.sig, in.key, in.value);
    in = victim;
    Positions(in.key, config.seed, config.d, mask, in_pos);
    for (u32 r = 0; r < config.d; ++r) {
      if (state.sigs[in_pos[r]] == enetstl::kEmptySig) {
        WriteSlot(state, in_pos[r], in.sig, in.key, in.value);
        return true;
      }
    }
  }
  *leftover = in;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// DaryCuckooBase
// ---------------------------------------------------------------------------

DaryCuckooBase::DaryCuckooBase(const DaryCuckooConfig& config)
    : config_(config), slot_mask_(config.num_slots - 1) {
  state_ = MakeState(config.num_slots);
}

void DaryCuckooBase::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                                  ebpf::XdpAction* verdicts) {
  ForEachNfChunk(count, [&](u32 start, u32 chunk) {
    ebpf::FiveTuple keys[kMaxNfBurst];
    std::optional<u64> results[kMaxNfBurst];
    u32 idx[kMaxNfBurst];
    u32 parsed = 0;
    for (u32 i = 0; i < chunk; ++i) {
      if (ebpf::ParseFiveTuple(ctxs[start + i], &keys[parsed])) {
        idx[parsed++] = start + i;
      } else {
        verdicts[start + i] = ebpf::XdpAction::kAborted;
      }
    }
    LookupBatch(keys, parsed, results);
    for (u32 i = 0; i < parsed; ++i) {
      verdicts[idx[i]] = results[i].has_value() ? ebpf::XdpAction::kTx
                                                : ebpf::XdpAction::kDrop;
    }
  });
}

bool DaryCuckooBase::InsertImpl(const ebpf::FiveTuple& key, u64 value) {
  if (migrating()) {
    MigrateStep();  // may finish the resize and swap tables
  }
  const u32 sig = MakeSig(key, config_.seed);

  // Update wherever the key currently lives: stash, in-flight new table,
  // primary table.
  if (!stash_.empty()) {
    for (StashEntry& e : stash_) {
      if (e.sig == sig && std::memcmp(&e.key, &key, 16) == 0) {
        e.value = value;
        return true;
      }
    }
  }
  u32 pos[8];
  if (migrating()) {
    Positions(key, config_.seed, config_.d, next_mask_, pos);
    for (u32 r = 0; r < config_.d; ++r) {
      if (next_.sigs[pos[r]] == sig && KeyEquals(next_, pos[r], key)) {
        next_.values[pos[r]] = value;
        return true;
      }
    }
  }
  Positions(key, config_.seed, config_.d, slot_mask_, pos);
  for (u32 r = 0; r < config_.d; ++r) {
    if (state_.sigs[pos[r]] == sig && KeyEquals(state_, pos[r], key)) {
      state_.values[pos[r]] = value;
      return true;
    }
  }

  // During a migration new entries go to the new table only, so the
  // migration cursor never has to revisit drained old slots.
  DaryCuckooState& target = migrating() ? next_ : state_;
  const u32 mask = migrating() ? next_mask_ : slot_mask_;
  const DaryEntry entry{sig, key, value};

  // Forced kick-chain exhaustion: skip placement, go straight to the stash.
  const bool forced =
      enetstl::FaultInjector::Global().ShouldFail("dary_cuckoo.insert");
  if (forced) {
    if (!StashPut(sig, key, value)) {
      return false;
    }
    ++size_;
    MaybeStartResize();
    return true;
  }

  DaryEntry leftover;
  if (PlaceNew(target, config_, mask, kick_rng_, entry, &leftover)) {
    ++size_;
    return true;
  }
  // Walk exhausted: the new key is resident; park the displaced victim.
  if (StashPut(leftover.sig, leftover.key, leftover.value)) {
    ++size_;
    MaybeStartResize();
    return true;
  }
  // Stash full: historical lossy fallback — the victim overwrites the
  // occupant of its first candidate slot (net table population unchanged,
  // so size_ stays consistent without an increment).
  u32 vpos[8];
  Positions(leftover.key, config_.seed, config_.d, mask, vpos);
  WriteSlot(target, vpos[0], leftover.sig, leftover.key, leftover.value);
  ++degrade_stats_.stash_drops;
  return false;
}

bool DaryCuckooBase::EraseImpl(const ebpf::FiveTuple& key) {
  if (migrating()) {
    MigrateStep();
  }
  const u32 sig = MakeSig(key, config_.seed);
  u32 pos[8];
  Positions(key, config_.seed, config_.d, slot_mask_, pos);
  for (u32 r = 0; r < config_.d; ++r) {
    if (state_.sigs[pos[r]] == sig && KeyEquals(state_, pos[r], key)) {
      ClearSlot(state_, pos[r]);
      --size_;
      return true;
    }
  }
  if (migrating()) {
    Positions(key, config_.seed, config_.d, next_mask_, pos);
    for (u32 r = 0; r < config_.d; ++r) {
      if (next_.sigs[pos[r]] == sig && KeyEquals(next_, pos[r], key)) {
        ClearSlot(next_, pos[r]);
        --size_;
        return true;
      }
    }
  }
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].sig == sig && std::memcmp(&stash_[i].key, &key, 16) == 0) {
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      --size_;
      UpdateDegraded();
      return true;
    }
  }
  return false;
}

std::optional<u64> DaryCuckooBase::LookupDegraded(
    const ebpf::FiveTuple& key) const {
  const u32 sig = MakeSig(key, config_.seed);
  if (migrating()) {
    u32 pos[8];
    Positions(key, config_.seed, config_.d, next_mask_, pos);
    for (u32 r = 0; r < config_.d; ++r) {
      if (next_.sigs[pos[r]] == sig && KeyEquals(next_, pos[r], key)) {
        return next_.values[pos[r]];
      }
    }
  }
  for (const StashEntry& e : stash_) {
    if (e.sig == sig && std::memcmp(&e.key, &key, 16) == 0) {
      return e.value;
    }
  }
  return std::nullopt;
}

bool DaryCuckooBase::StashPut(u32 sig, const ebpf::FiveTuple& key, u64 value) {
  if (stash_.size() >= config_.stash_capacity) {
    return false;
  }
  stash_.push_back(StashEntry{sig, key, value});
  ++degrade_stats_.stash_parks;
  UpdateDegraded();
  return true;
}

void DaryCuckooBase::MaybeStartResize() {
  if (!config_.auto_resize || migrating()) {
    return;
  }
  if (stash_.size() < config_.resize_watermark) {
    return;
  }
  const u32 new_slots = config_.num_slots * 2;
  next_ = MakeState(new_slots);
  next_mask_ = new_slots - 1;
  migrate_pos_ = 0;
  ++degrade_stats_.resizes_started;
  UpdateDegraded();
}

void DaryCuckooBase::MigrateStep() {
  u32 budget = config_.migrate_slots_per_op;
  const u32 old_slots = config_.num_slots;
  while (budget > 0 && migrate_pos_ < old_slots) {
    if (state_.sigs[migrate_pos_] != enetstl::kEmptySig) {
      DaryEntry e;
      e.sig = state_.sigs[migrate_pos_];
      std::memcpy(&e.key, state_.keys[migrate_pos_].data(), 16);
      e.value = state_.values[migrate_pos_];
      ClearSlot(state_, migrate_pos_);
      DaryEntry leftover;
      if (!PlaceNew(next_, config_, next_mask_, kick_rng_, e, &leftover)) {
        // Walk failure into a half-empty 2x table is near-impossible; the
        // stash is the backstop and only a full stash loses the entry.
        if (!StashPut(leftover.sig, leftover.key, leftover.value)) {
          u32 vpos[8];
          Positions(leftover.key, config_.seed, config_.d, next_mask_, vpos);
          WriteSlot(next_, vpos[0], leftover.sig, leftover.key,
                    leftover.value);
          ++degrade_stats_.stash_drops;
          --size_;
        }
      }
    }
    ++migrate_pos_;
    --budget;
    ++degrade_stats_.units_migrated;
  }
  if (migrate_pos_ >= old_slots) {
    FinishResize();
  }
}

void DaryCuckooBase::FinishResize() {
  state_ = std::move(next_);
  next_ = DaryCuckooState{};
  slot_mask_ = next_mask_;
  config_.num_slots = next_mask_ + 1;
  next_mask_ = 0;
  migrate_pos_ = 0;
  ++degrade_stats_.resizes_completed;
  DrainStash();
  UpdateDegraded();
}

void DaryCuckooBase::DrainStash() {
  // Re-place stash entries that now have an empty candidate (displacement
  // walks are avoided here: a failed walk would just mint a new victim).
  for (std::size_t i = 0; i < stash_.size();) {
    u32 pos[8];
    Positions(stash_[i].key, config_.seed, config_.d, slot_mask_, pos);
    bool placed = false;
    for (u32 r = 0; r < config_.d; ++r) {
      if (state_.sigs[pos[r]] == enetstl::kEmptySig) {
        WriteSlot(state_, pos[r], stash_[i].sig, stash_[i].key,
                  stash_[i].value);
        placed = true;
        break;
      }
    }
    if (placed) {
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
}

// ---------------------------------------------------------------------------
// DaryCuckooEbpf: d scalar BPF-codegen hashes + per-position compares.
// ---------------------------------------------------------------------------

DaryCuckooEbpf::DaryCuckooEbpf(const DaryCuckooConfig& config)
    : DaryCuckooBase(config) {}

namespace {

// The eBPF probe: one scalar software hash and one compare per candidate.
std::optional<u32> EbpfFind(const DaryCuckooState& state,
                            const DaryCuckooConfig& config, u32 slot_mask,
                            const ebpf::FiveTuple& key) {
  const u32 sig = MakeSig(key, config.seed);
  for (u32 r = 0; r < config.d; ++r) {
    const u32 h =
        enetstl::XxHash32Bpf(&key, sizeof(key), enetstl::LaneSeed(config.seed, r));
    const u32 pos = h & slot_mask;
    if (state.sigs[pos] == sig && KeyEquals(state, pos, key)) {
      return pos;
    }
  }
  return std::nullopt;
}

}  // namespace

bool DaryCuckooEbpf::Insert(const ebpf::FiveTuple& key, u64 value) {
  return InsertImpl(key, value);
}

std::optional<u64> DaryCuckooEbpf::Lookup(const ebpf::FiveTuple& key) {
  const auto pos = EbpfFind(state_, config_, slot_mask_, key);
  if (pos.has_value()) {
    return state_.values[*pos];
  }
  if (degraded()) {
    return LookupDegraded(key);
  }
  return std::nullopt;
}

bool DaryCuckooEbpf::Erase(const ebpf::FiveTuple& key) {
  return EraseImpl(key);
}

// ---------------------------------------------------------------------------
// DaryCuckooKernel: inline multi-hash + inline compares.
// ---------------------------------------------------------------------------

DaryCuckooKernel::DaryCuckooKernel(const DaryCuckooConfig& config)
    : DaryCuckooBase(config) {}

namespace {

std::optional<u32> KernelFind(const DaryCuckooState& state,
                              const DaryCuckooConfig& config, u32 slot_mask,
                              const ebpf::FiveTuple& key) {
  u32 pos[8];
  Positions(key, config.seed, config.d, slot_mask, pos);
  const u32 sig = MakeSig(key, config.seed);
  for (u32 r = 0; r < config.d; ++r) {
    if (state.sigs[pos[r]] == sig && KeyEquals(state, pos[r], key)) {
      return pos[r];
    }
  }
  return std::nullopt;
}

}  // namespace

bool DaryCuckooKernel::Insert(const ebpf::FiveTuple& key, u64 value) {
  return InsertImpl(key, value);
}

std::optional<u64> DaryCuckooKernel::Lookup(const ebpf::FiveTuple& key) {
  const auto pos = KernelFind(state_, config_, slot_mask_, key);
  if (pos.has_value()) {
    return state_.values[*pos];
  }
  if (degraded()) {
    return LookupDegraded(key);
  }
  return std::nullopt;
}

bool DaryCuckooKernel::Erase(const ebpf::FiveTuple& key) {
  return EraseImpl(key);
}

void DaryCuckooKernel::LookupBatch(const ebpf::FiveTuple* keys, u32 n,
                                   std::optional<u64>* out) {
  const u32 d = config_.d;
  ForEachNfChunk(n, [&](u32 start, u32 chunk) {
    u32 pos[kMaxNfBurst * 8];
    u32 sig[kMaxNfBurst];
    // Stage 1: all d candidate positions of every key, prefetched.
    for (u32 i = 0; i < chunk; ++i) {
      const ebpf::FiveTuple& key = keys[start + i];
      Positions(key, config_.seed, d, slot_mask_, &pos[i * 8]);
      sig[i] = MakeSig(key, config_.seed);
      for (u32 r = 0; r < d; ++r) {
        enetstl::internal::PrefetchRead(&state_.sigs[pos[i * 8 + r]]);
      }
    }
    // Stage 2: signature probes in row order.
    for (u32 i = 0; i < chunk; ++i) {
      const ebpf::FiveTuple& key = keys[start + i];
      out[start + i] = std::nullopt;
      for (u32 r = 0; r < d; ++r) {
        const u32 p = pos[i * 8 + r];
        if (state_.sigs[p] == sig[i] && KeyEquals(state_, p, key)) {
          out[start + i] = state_.values[p];
          break;
        }
      }
      if (!out[start + i].has_value() && degraded()) {
        out[start + i] = LookupDegraded(key);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// DaryCuckooEnetstl: one fused HashCmp kfunc per probe.
// ---------------------------------------------------------------------------

DaryCuckooEnetstl::DaryCuckooEnetstl(const DaryCuckooConfig& config)
    : DaryCuckooBase(config) {}

namespace {

std::optional<u32> EnetstlFind(const DaryCuckooState& state,
                               const DaryCuckooConfig& config, u32 slot_mask,
                               const ebpf::FiveTuple& key) {
  const u32 sig = MakeSig(key, config.seed);
  u32 pos = 0;
  const ebpf::s32 row =
      enetstl::HashCmp(state.sigs.data(), slot_mask, &key, sizeof(key),
                       config.seed, config.d, sig, &pos, nullptr);
  if (row >= 0 && KeyEquals(state, pos, key)) {
    return pos;
  }
  if (row >= 0) {
    // Signature collision with a key mismatch (~2^-32 per slot): fall back
    // to scanning all candidate positions.
    u32 all[8];
    enetstl::HashPositions(all, config.d, slot_mask, &key, sizeof(key),
                           config.seed);
    for (u32 r = 0; r < config.d; ++r) {
      if (state.sigs[all[r]] == sig && KeyEquals(state, all[r], key)) {
        return all[r];
      }
    }
  }
  return std::nullopt;
}

}  // namespace

bool DaryCuckooEnetstl::Insert(const ebpf::FiveTuple& key, u64 value) {
  return InsertImpl(key, value);
}

std::optional<u64> DaryCuckooEnetstl::Lookup(const ebpf::FiveTuple& key) {
  const auto pos = EnetstlFind(state_, config_, slot_mask_, key);
  if (pos.has_value()) {
    return state_.values[*pos];
  }
  if (degraded()) {
    return LookupDegraded(key);
  }
  return std::nullopt;
}

bool DaryCuckooEnetstl::Erase(const ebpf::FiveTuple& key) {
  return EraseImpl(key);
}

void DaryCuckooEnetstl::LookupBatch(const ebpf::FiveTuple* keys, u32 n,
                                    std::optional<u64>* out) {
  const u32 d = config_.d;
  ForEachNfChunk(n, [&](u32 start, u32 chunk) {
    u32 pos[kMaxNfBurst * 8];
    // Stage 1: one kfunc computes all d masked positions per key and
    // prefetches every addressed slot (row_stride 0: the d rows index one
    // shared signature array).
    enetstl::MultiHashPrefetchBatch(
        keys + start, sizeof(ebpf::FiveTuple), sizeof(ebpf::FiveTuple), chunk,
        config_.seed, d, slot_mask_, state_.sigs.data(),
        static_cast<u32>(sizeof(u32)), /*row_stride=*/0, pos);
    // Stage 2: scalar signature probes over the prefetched candidates.
    for (u32 i = 0; i < chunk; ++i) {
      const ebpf::FiveTuple& key = keys[start + i];
      const u32 sig = MakeSig(key, config_.seed);
      out[start + i] = std::nullopt;
      for (u32 r = 0; r < d; ++r) {
        const u32 p = pos[i * d + r];
        if (state_.sigs[p] == sig && KeyEquals(state_, p, key)) {
          out[start + i] = state_.values[p];
          break;
        }
      }
      if (!out[start + i].has_value() && degraded()) {
        out[start + i] = LookupDegraded(key);
      }
    }
  });
}

namespace builtin {

void RegisterDaryCuckoo(NfRegistry& registry) {
  NfEntry entry;
  entry.name = "dary-cuckoo-kv";
  entry.category = "key-value query";
  entry.variants = {Variant::kEbpf, Variant::kKernel, Variant::kEnetstl};
  entry.caps.batched = true;
  entry.factory = [](Variant v) -> std::unique_ptr<NetworkFunction> {
    const DaryCuckooConfig config;
    switch (v) {
      case Variant::kEbpf:
        return std::make_unique<DaryCuckooEbpf>(config);
      case Variant::kKernel:
        return std::make_unique<DaryCuckooKernel>(config);
      case Variant::kEnetstl:
        return std::make_unique<DaryCuckooEnetstl>(config);
    }
    return nullptr;
  };
  registry.Register(std::move(entry));
}

}  // namespace builtin

}  // namespace nf
