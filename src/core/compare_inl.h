// Internal: inline implementations of the parallel compare/reduce kernels.
// compare.cc wraps them as out-of-line kfuncs (the eNetSTL API); the
// kernel-native NF baselines include this header directly so they get the
// same SIMD code with no call boundary. Not part of the public API.
#ifndef ENETSTL_CORE_COMPARE_INL_H_
#define ENETSTL_CORE_COMPARE_INL_H_

#include <cstring>

#include "core/bits.h"
#include "core/compare.h"

#if defined(ENETSTL_HAVE_AVX2)
#include <immintrin.h>
#endif

namespace enetstl {
namespace internal {

inline s32 FindU32Impl(const u32* arr, u32 count, u32 key) {
#if defined(ENETSTL_HAVE_AVX2)
  const __m256i vkey = _mm256_set1_epi32(static_cast<int>(key));
  u32 i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
    const u32 mask = static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi32(v, vkey)));
    if (mask != 0) {
      return static_cast<s32>(i + (Ffs64(mask) >> 2));
    }
  }
  for (; i < count; ++i) {
    if (arr[i] == key) {
      return static_cast<s32>(i);
    }
  }
  return -1;
#else
  return scalar::FindU32(arr, count, key);
#endif
}

inline s32 FindU16Impl(const u16* arr, u32 count, u16 key) {
#if defined(ENETSTL_HAVE_AVX2)
  const __m256i vkey = _mm256_set1_epi16(static_cast<short>(key));
  u32 i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
    const u32 mask = static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, vkey)));
    if (mask != 0) {
      return static_cast<s32>(i + (Ffs64(mask) >> 1));
    }
  }
  for (; i < count; ++i) {
    if (arr[i] == key) {
      return static_cast<s32>(i);
    }
  }
  return -1;
#else
  return scalar::FindU16(arr, count, key);
#endif
}

inline s32 FindKey16Impl(const u8* keys, u32 count, const u8* key) {
#if defined(ENETSTL_HAVE_AVX2)
  const __m128i k128 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  const __m256i vkey = _mm256_broadcastsi128_si256(k128);
  u32 i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i * 16));
    const u32 mask = static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, vkey)));
    if ((mask & 0xffffu) == 0xffffu) {
      return static_cast<s32>(i);
    }
    if ((mask >> 16) == 0xffffu) {
      return static_cast<s32>(i + 1);
    }
  }
  if (i < count && std::memcmp(keys + i * 16, key, 16) == 0) {
    return static_cast<s32>(i);
  }
  return -1;
#else
  return scalar::FindKey16(keys, count, key);
#endif
}

inline s32 CompareKey32Impl(const u8* a, const u8* b) {
#if defined(ENETSTL_HAVE_AVX2)
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  const u32 neq =
      ~static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
  if (neq == 0) {
    return 0;
  }
  const u32 i = Ffs64(neq);  // lowest set bit = first differing byte
  return a[i] < b[i] ? -1 : 1;
#else
  return scalar::CompareKey32(a, b);
#endif
}

inline s32 MinIndexU32Impl(const u32* arr, u32 count, u32* min_val) {
  if (count == 0) {
    return -1;
  }
#if defined(ENETSTL_HAVE_AVX2)
  if (count >= 8) {
    __m256i vmin = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr));
    u32 i = 8;
    for (; i + 8 <= count; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
      vmin = _mm256_min_epu32(vmin, v);
    }
    alignas(32) u32 lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
    u32 best = lanes[0];
    for (int l = 1; l < 8; ++l) {
      best = lanes[l] < best ? lanes[l] : best;
    }
    for (u32 t = i; t < count; ++t) {
      best = arr[t] < best ? arr[t] : best;
    }
    const s32 idx = FindU32Impl(arr, count, best);
    *min_val = best;
    return idx;
  }
#endif
  return scalar::MinIndexU32(arr, count, min_val);
}

inline s32 MaxIndexU32Impl(const u32* arr, u32 count, u32* max_val) {
  if (count == 0) {
    return -1;
  }
#if defined(ENETSTL_HAVE_AVX2)
  if (count >= 8) {
    __m256i vmax = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr));
    u32 i = 8;
    for (; i + 8 <= count; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(arr + i));
      vmax = _mm256_max_epu32(vmax, v);
    }
    alignas(32) u32 lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmax);
    u32 best = lanes[0];
    for (int l = 1; l < 8; ++l) {
      best = lanes[l] > best ? lanes[l] : best;
    }
    for (u32 t = i; t < count; ++t) {
      best = arr[t] > best ? arr[t] : best;
    }
    const s32 idx = FindU32Impl(arr, count, best);
    *max_val = best;
    return idx;
  }
#endif
  return scalar::MaxIndexU32(arr, count, max_val);
}

}  // namespace internal
}  // namespace enetstl

#endif  // ENETSTL_CORE_COMPARE_INL_H_
