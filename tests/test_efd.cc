// Tests for the EFD load balancer: inserted keys resolve to their assigned
// backend, group rebuilds stay consistent as keys accumulate, and lookups
// are stable (no key storage on the datapath).
#include "nf/efd.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "pktgen/flowgen.h"
#include "pktgen/pipeline.h"

namespace nf {
namespace {

enum class Kind { kEbpf, kKernel, kEnetstl };

std::unique_ptr<EfdBase> Make(Kind kind, const EfdConfig& config) {
  switch (kind) {
    case Kind::kEbpf:
      return std::make_unique<EfdEbpf>(config);
    case Kind::kKernel:
      return std::make_unique<EfdKernel>(config);
    case Kind::kEnetstl:
      return std::make_unique<EfdEnetstl>(config);
  }
  return nullptr;
}

ebpf::FiveTuple KeyOf(u32 i) {
  ebpf::FiveTuple t;
  t.src_ip = 0xac100000u + i;
  t.dst_ip = 0x0a0a0a0au;
  t.src_port = static_cast<ebpf::u16>(1000 + i);
  t.dst_port = 80;
  t.protocol = 6;
  return t;
}

class EfdAllVariants : public ::testing::TestWithParam<Kind> {};

TEST_P(EfdAllVariants, SingleKeyResolvesToItsBackend) {
  EfdConfig config;
  auto efd = Make(GetParam(), config);
  ASSERT_TRUE(efd->Insert(KeyOf(1), 7));
  EXPECT_EQ(efd->Lookup(KeyOf(1)), 7);
}

TEST_P(EfdAllVariants, ManyKeysAllResolveCorrectly) {
  EfdConfig config;
  config.num_groups = 256;
  auto efd = Make(GetParam(), config);
  std::map<u32, ebpf::u8> truth;
  pktgen::Rng rng(3);
  u32 inserted = 0;
  for (u32 i = 0; i < 2000; ++i) {
    const ebpf::u8 backend = static_cast<ebpf::u8>(rng.NextBounded(16));
    if (efd->Insert(KeyOf(i), backend)) {
      truth[i] = backend;
      ++inserted;
    }
  }
  // With 256 groups and 2000 keys (~8 keys/group, 64 slots), nearly all
  // inserts find a perfect seed.
  EXPECT_GT(inserted, 1950u);
  for (const auto& [i, backend] : truth) {
    EXPECT_EQ(efd->Lookup(KeyOf(i)), backend) << i;
  }
}

TEST_P(EfdAllVariants, ReassignmentChangesBackend) {
  EfdConfig config;
  auto efd = Make(GetParam(), config);
  ASSERT_TRUE(efd->Insert(KeyOf(5), 1));
  ASSERT_TRUE(efd->Insert(KeyOf(5), 9));
  EXPECT_EQ(efd->Lookup(KeyOf(5)), 9);
}

TEST_P(EfdAllVariants, GroupRebuildPreservesEarlierKeys) {
  EfdConfig config;
  config.num_groups = 1;  // all keys share one group: maximal rebuild stress
  auto efd = Make(GetParam(), config);
  std::map<u32, ebpf::u8> truth;
  for (u32 i = 0; i < 24; ++i) {
    const ebpf::u8 backend = static_cast<ebpf::u8>(i % 4);
    if (efd->Insert(KeyOf(i), backend)) {
      truth[i] = backend;
      // After every rebuild, every previously inserted key must still map
      // to its backend.
      for (const auto& [j, b] : truth) {
        ASSERT_EQ(efd->Lookup(KeyOf(j)), b) << "after inserting " << i;
      }
    }
  }
  EXPECT_GT(truth.size(), 16u);
}

TEST_P(EfdAllVariants, UnknownKeysStillLoadBalance) {
  // EFD stores no keys: unknown flows hash to *some* backend; verify the
  // spread is not degenerate.
  EfdConfig config;
  auto efd = Make(GetParam(), config);
  for (u32 i = 0; i < 100; ++i) {
    efd->Insert(KeyOf(i), static_cast<ebpf::u8>(i % 8));
  }
  std::map<ebpf::u8, u32> spread;
  for (u32 i = 10000; i < 12000; ++i) {
    ++spread[efd->Lookup(KeyOf(i))];
  }
  EXPECT_GT(spread.size(), 1u);
}

TEST_P(EfdAllVariants, PacketPathForwards) {
  EfdConfig config;
  auto efd = Make(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(4, 5);
  efd->Insert(flows[0], 3);
  auto packet = pktgen::Packet::FromTuple(flows[0]);
  ebpf::XdpContext ctx{packet.frame, packet.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(efd->Process(ctx), ebpf::XdpAction::kTx);
}

INSTANTIATE_TEST_SUITE_P(Variants, EfdAllVariants,
                         ::testing::Values(Kind::kEbpf, Kind::kKernel,
                                           Kind::kEnetstl),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kEbpf:
                               return "eBPF";
                             case Kind::kKernel:
                               return "Kernel";
                             default:
                               return "eNetSTL";
                           }
                         });

// Kernel and eNetSTL share the CRC hash: identical group layouts, identical
// lookups, including for keys never inserted.
TEST(EfdEquivalence, KernelAndEnetstlAgree) {
  EfdConfig config;
  EfdKernel kern(config);
  EfdEnetstl stl(config);
  for (u32 i = 0; i < 500; ++i) {
    const ebpf::u8 backend = static_cast<ebpf::u8>(i % 10);
    ASSERT_EQ(kern.Insert(KeyOf(i), backend), stl.Insert(KeyOf(i), backend));
  }
  for (u32 i = 0; i < 2000; ++i) {
    ASSERT_EQ(kern.Lookup(KeyOf(i)), stl.Lookup(KeyOf(i))) << i;
  }
}

}  // namespace
}  // namespace nf
