#include "core/list_buckets.h"

namespace enetstl {

ListBuckets::ListBuckets(u32 num_buckets, u32 capacity, u32 elem_size)
    : num_buckets_(num_buckets), capacity_(capacity), elem_size_(elem_size) {
  for (PerCpu& c : percpu_) {
    c.head.assign(num_buckets, kNil);
    c.tail.assign(num_buckets, kNil);
    c.len.assign(num_buckets, 0);
    c.next.resize(capacity);
    c.payload.resize(static_cast<std::size_t>(capacity) * elem_size);
    c.occupancy.assign((num_buckets + 63) / 64, 0);
    for (u32 i = 0; i < capacity; ++i) {
      c.next[i] = (i + 1 < capacity) ? i + 1 : kNil;
    }
    c.free_head = capacity > 0 ? 0 : kNil;
  }
}

ENETSTL_NOINLINE int ListBuckets::InsertFront(u32 bucket, const void* data,
                                              u32 size) {
  ebpf::CompilerBarrier();
  if (bucket >= num_buckets_ || size != elem_size_) {
    return ebpf::kErrInval;
  }
  PerCpu& c = Cpu();
  const u32 idx = AllocNode(c);
  if (idx == kNil) {
    return ebpf::kErrNoSpc;
  }
  std::memcpy(&c.payload[static_cast<std::size_t>(idx) * elem_size_], data,
              elem_size_);
  c.next[idx] = c.head[bucket];
  c.head[bucket] = idx;
  if (c.tail[bucket] == kNil) {
    c.tail[bucket] = idx;
  }
  if (c.len[bucket]++ == 0) {
    MarkOccupied(c, bucket);
  }
  return ebpf::kOk;
}

ENETSTL_NOINLINE int ListBuckets::InsertTail(u32 bucket, const void* data,
                                             u32 size) {
  ebpf::CompilerBarrier();
  if (bucket >= num_buckets_ || size != elem_size_) {
    return ebpf::kErrInval;
  }
  PerCpu& c = Cpu();
  const u32 idx = AllocNode(c);
  if (idx == kNil) {
    return ebpf::kErrNoSpc;
  }
  std::memcpy(&c.payload[static_cast<std::size_t>(idx) * elem_size_], data,
              elem_size_);
  c.next[idx] = kNil;
  if (c.tail[bucket] != kNil) {
    c.next[c.tail[bucket]] = idx;
  } else {
    c.head[bucket] = idx;
  }
  c.tail[bucket] = idx;
  if (c.len[bucket]++ == 0) {
    MarkOccupied(c, bucket);
  }
  return ebpf::kOk;
}

ENETSTL_NOINLINE int ListBuckets::PopFront(u32 bucket, void* out, u32 size) {
  ebpf::CompilerBarrier();
  if (bucket >= num_buckets_ || size != elem_size_) {
    return ebpf::kErrInval;
  }
  PerCpu& c = Cpu();
  const u32 idx = c.head[bucket];
  if (idx == kNil) {
    return ebpf::kErrNoEnt;
  }
  std::memcpy(out, &c.payload[static_cast<std::size_t>(idx) * elem_size_],
              elem_size_);
  c.head[bucket] = c.next[idx];
  if (c.head[bucket] == kNil) {
    c.tail[bucket] = kNil;
  }
  FreeNode(c, idx);
  if (--c.len[bucket] == 0) {
    MarkEmpty(c, bucket);
  }
  return ebpf::kOk;
}

ENETSTL_NOINLINE int ListBuckets::PeekFront(u32 bucket, void* out, u32 size) {
  ebpf::CompilerBarrier();
  if (bucket >= num_buckets_ || size != elem_size_) {
    return ebpf::kErrInval;
  }
  PerCpu& c = Cpu();
  const u32 idx = c.head[bucket];
  if (idx == kNil) {
    return ebpf::kErrNoEnt;
  }
  std::memcpy(out, &c.payload[static_cast<std::size_t>(idx) * elem_size_],
              elem_size_);
  return ebpf::kOk;
}

ENETSTL_NOINLINE s32 ListBuckets::FirstNonEmpty(u32 from) {
  ebpf::CompilerBarrier();
  if (from >= num_buckets_) {
    return -1;
  }
  PerCpu& c = Cpu();
  u32 word = from >> 6;
  u64 w = c.occupancy[word] & (~0ull << (from & 63));
  const u32 words = static_cast<u32>(c.occupancy.size());
  while (true) {
    if (w != 0) {
      const u32 bucket = (word << 6) + Ffs64(w);
      return bucket < num_buckets_ ? static_cast<s32>(bucket) : -1;
    }
    if (++word >= words) {
      return -1;
    }
    w = c.occupancy[word];
  }
}

u32 ListBuckets::BucketLen(u32 bucket) const {
  if (bucket >= num_buckets_) {
    return 0;
  }
  return percpu_[ebpf::CurrentCpu()].len[bucket];
}

}  // namespace enetstl
