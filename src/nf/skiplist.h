// Skip-list key-value query — the paper's Case Study 1 (NFD-HCS hierarchical
// content store).
//
// This NF cannot be written in pure eBPF at all (problem P1): a skip list is
// a variable number of dynamically allocated nodes with fully customized
// pointer routing, which the verifier does not admit. There are therefore
// only two variants:
//  * SkipListKernel  — native pointers, the upper baseline.
//  * SkipListEnetstl — nodes are memory-wrapper nodes: out-slot i is the
//    level-i forward pointer, in-slot i records the level-i predecessor;
//    traversal uses the check-free GetNext, mutation uses NodeConnect, and
//    node destruction relies on lazy safety checking to null every
//    predecessor pointer.
//
// Paper parameters: max height 16, 32-byte keys, 128-byte values.
#ifndef ENETSTL_NF_SKIPLIST_H_
#define ENETSTL_NF_SKIPLIST_H_

#include <cstring>
#include <memory>
#include <optional>

#include "core/compare_inl.h"
#include "core/memory_wrapper.h"
#include "nf/nf_interface.h"

namespace nf {

inline constexpr u32 kSkipListMaxHeight = 16;
inline constexpr u32 kSkipKeySize = 32;
inline constexpr u32 kSkipValueSize = 128;

struct SkipKey {
  u8 bytes[kSkipKeySize] = {};

  // Expands a packet 5-tuple into the fixed 32-byte key format.
  static SkipKey FromTuple(const ebpf::FiveTuple& tuple) {
    SkipKey k;
    std::memcpy(k.bytes, &tuple, sizeof(tuple));
    std::memcpy(k.bytes + 16, &tuple, sizeof(tuple));
    return k;
  }

  friend bool operator==(const SkipKey& a, const SkipKey& b) {
    return std::memcmp(a.bytes, b.bytes, kSkipKeySize) == 0;
  }
};

// 32-byte key ordering through the parallel-compare kernel of core/compare.h
// (the enetstl_cmp_key32 implementation): one AVX2 compare + movemask instead
// of a byte loop, scalar fallback without SIMD. Sign-only contract — all call
// sites test < 0 / == 0.
inline int CompareKeys(const SkipKey& a, const SkipKey& b) {
  return enetstl::internal::CompareKey32Impl(a.bytes, b.bytes);
}

struct SkipValue {
  u8 bytes[kSkipValueSize] = {};
};

class SkipListBase : public NetworkFunction {
 public:
  virtual bool Lookup(const SkipKey& key, SkipValue* value) = 0;
  virtual void Update(const SkipKey& key, const SkipValue& value) = 0;
  virtual bool Erase(const SkipKey& key) = 0;
  virtual u32 size() const = 0;

  // Batched lookup: found[i]/values[i] must match Lookup(keys[i]) exactly.
  // The default is the scalar loop; the kernel and eNetSTL variants override
  // it with a frontier walk — all still-searching keys advance one GetNext
  // hop per round, with the next round's nodes prefetched as a group (the
  // HashPrefetchBatch pattern applied to per-level pointer chains).
  virtual void LookupBatch(const SkipKey* keys, u32 n, SkipValue* values,
                           bool* found) {
    for (u32 i = 0; i < n; ++i) {
      found[i] = Lookup(keys[i], &values[i]);
    }
  }

  // Packet path: payload word 0 selects the operation (KvOp encoding);
  // lookups that hit pass, misses drop.
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  // Burst path: contiguous runs of lookup packets are funneled through
  // LookupBatch; updates/deletes stay scalar so the op interleaving (and
  // thus every verdict) is bit-identical to per-packet Process.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) override;

  std::string_view name() const override { return "skiplist-kv"; }
};

class SkipListKernel : public SkipListBase {
 public:
  explicit SkipListKernel(u64 seed = 0x853c49e6748fea9bull);
  ~SkipListKernel() override;
  SkipListKernel(const SkipListKernel&) = delete;
  SkipListKernel& operator=(const SkipListKernel&) = delete;

  bool Lookup(const SkipKey& key, SkipValue* value) override;
  void LookupBatch(const SkipKey* keys, u32 n, SkipValue* values,
                   bool* found) override;
  void Update(const SkipKey& key, const SkipValue& value) override;
  bool Erase(const SkipKey& key) override;
  u32 size() const override { return size_; }
  Variant variant() const override { return Variant::kKernel; }

 private:
  struct Node {
    SkipKey key;
    SkipValue value;
    u32 height;
    Node* next[kSkipListMaxHeight];
  };

  u32 RandomHeight();

  Node* head_;
  u32 size_ = 0;
  u32 cur_height_ = 1;  // highest level currently populated
  u64 rng_state_;
};

class SkipListEnetstl : public SkipListBase {
 public:
  // `mode` selects lazy (production) or eager (ablation) safety checking in
  // the underlying memory wrapper.
  explicit SkipListEnetstl(
      u64 seed = 0x853c49e6748fea9bull,
      enetstl::NodeProxy::CheckMode mode = enetstl::NodeProxy::CheckMode::kLazy);
  ~SkipListEnetstl() override;
  SkipListEnetstl(const SkipListEnetstl&) = delete;
  SkipListEnetstl& operator=(const SkipListEnetstl&) = delete;

  bool Lookup(const SkipKey& key, SkipValue* value) override;
  void LookupBatch(const SkipKey* keys, u32 n, SkipValue* values,
                   bool* found) override;
  void Update(const SkipKey& key, const SkipValue& value) override;
  bool Erase(const SkipKey& key) override;
  u32 size() const override { return size_; }
  Variant variant() const override { return Variant::kEnetstl; }

  const enetstl::NodeProxy& proxy() const { return proxy_; }

 private:
  u32 RandomHeight();

  // Node payload layout: [SkipKey][SkipValue][u32 height].
  static constexpr u32 kKeyOff = 0;
  static constexpr u32 kValueOff = kSkipKeySize;
  static constexpr u32 kHeightOff = kSkipKeySize + kSkipValueSize;
  static constexpr u32 kDataSize = kHeightOff + sizeof(u32);

  enetstl::NodeProxy proxy_;
  enetstl::Node* head_;
  u32 size_ = 0;
  u32 cur_height_ = 1;  // highest level currently populated
  u64 rng_state_;
};

}  // namespace nf

#endif  // ENETSTL_NF_SKIPLIST_H_
