// Scaling experiments for the burst-mode batched datapath and the
// RSS-sharded multi-core pipeline, on the cuckoo-switch FIB at 95% load:
//
//  1. throughput vs burst size {1, 8, 32, 64} for the eBPF / kernel /
//     eNetSTL variants — burst 1 is the per-packet baseline dispatch, the
//     larger bursts run the two-stage (hash+prefetch, then probe) batched
//     lookup;
//  2. throughput vs simulated cores (RSS sharding, per-worker table
//     replicas) for the same three variants;
//  3. the scale-out matrix: shards {1,2,4,8,16} x Zipf skew {0,0.9,1.1} x
//     burst {16,32,64}, static-RSS vs the migrating datapath, reported as
//     offered rate (packets / makespan, makespan = the busiest shard's own
//     CPU time) plus the derived parallel efficiency.
//
// Exit status: nonzero when a deterministic invariant fails (per-CPU stats
// not summing to the global totals, scale-out packet loss), or — on a full
// run only (no ENETSTL_BENCH_MEASURE_PACKETS override) — when the skew
// acceptance gate fails: at 8 shards / Zipf 1.1 / burst 32 migration must
// beat static RSS by >= 2x at parallel efficiency >= 0.75. The remaining
// timing-shape checks print PASS/FAIL but never fail the run, since
// wall-clock behaviour on a shared vCPU is not reproducible.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "nf/cuckoo_switch.h"
#include "pktgen/flowgen.h"
#include "pktgen/sharded_pipeline.h"

namespace {

using bench::u32;
using bench::u64;

nf::CuckooSwitchConfig SwitchConfig() {
  nf::CuckooSwitchConfig config;
  config.num_buckets = 1024;
  return config;
}

// Fresh, preloaded replica of one variant. Inserting the same resident flows
// in the same order builds bit-identical tables, so every worker's replica
// (and every burst-size run) probes the same structure.
std::unique_ptr<nf::CuckooSwitchBase> MakeSwitch(
    nf::Variant variant, const std::vector<ebpf::FiveTuple>& resident) {
  std::unique_ptr<nf::CuckooSwitchBase> sw;
  switch (variant) {
    case nf::Variant::kEbpf:
      sw = std::make_unique<nf::CuckooSwitchEbpf>(SwitchConfig());
      break;
    case nf::Variant::kKernel:
      sw = std::make_unique<nf::CuckooSwitchKernel>(SwitchConfig());
      break;
    default:
      sw = std::make_unique<nf::CuckooSwitchEnetstl>(SwitchConfig());
      break;
  }
  for (const auto& flow : resident) {
    sw->Insert(flow, 1);
  }
  return sw;
}

struct ShardedPoint {
  double mpps = 0.0;
  bool sums_ok = false;
};

ShardedPoint MeasureShardedMpps(nf::Variant variant,
                                const std::vector<ebpf::FiveTuple>& resident,
                                const pktgen::Trace& trace, u32 num_workers) {
  pktgen::ShardedPipeline::Options opts;
  opts.num_workers = num_workers;
  opts.burst_size = 32;
  opts.warmup_packets = 10'000;
  opts.measure_packets = 200'000;
  const pktgen::ShardedPipeline pipeline(opts);

  ShardedPoint point;
  for (int rep = 0; rep < 3; ++rep) {
    const auto result = pipeline.MeasureThroughput(
        [&](u32 /*cpu*/) -> pktgen::ShardedPipeline::BurstHandler {
          // Per-worker replica: each simulated core owns its own table, the
          // RSS deployment shape (flow affinity keeps them coherent).
          std::shared_ptr<nf::CuckooSwitchBase> sw =
              MakeSwitch(variant, resident);
          return [sw](ebpf::XdpContext* ctxs, u32 count,
                      ebpf::XdpAction* verdicts) {
            sw->ProcessBurst(ctxs, count, verdicts);
          };
        },
        trace);

    u64 packets = 0, dropped = 0, passed = 0, aborted = 0;
    for (const auto& shard : result.shards) {
      packets += shard.stats.packets;
      dropped += shard.stats.dropped;
      passed += shard.stats.passed;
      aborted += shard.stats.aborted;
    }
    point.sums_ok = packets == result.total.packets &&
                    packets == opts.measure_packets &&
                    dropped == result.total.dropped &&
                    passed == result.total.passed &&
                    aborted == result.total.aborted;
    if (!point.sums_ok) {
      return point;
    }
    const double mpps = result.total.pps / 1e6;
    point.mpps = mpps > point.mpps ? mpps : point.mpps;
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  bench::JsonReport report("scaling", argc, argv);
  // Cuckoo-switch at ~95% occupancy with a uniform resident-flow trace (the
  // nf_roster heavy configuration).
  const auto flows = pktgen::MakeFlowPopulation(16384, 71);
  auto probe_e = std::make_unique<nf::CuckooSwitchEbpf>(SwitchConfig());
  auto probe_k = std::make_unique<nf::CuckooSwitchKernel>(SwitchConfig());
  auto probe_s = std::make_unique<nf::CuckooSwitchEnetstl>(SwitchConfig());
  std::vector<ebpf::FiveTuple> resident;
  for (const auto& flow : flows) {
    if (resident.size() >= probe_e->capacity() * 95 / 100) {
      break;
    }
    if (probe_e->Insert(flow, 1) && probe_k->Insert(flow, 1) &&
        probe_s->Insert(flow, 1)) {
      resident.push_back(flow);
    }
  }
  const auto trace = pktgen::MakeUniformTrace(resident, 16384, 75);

  const nf::Variant variants[] = {nf::Variant::kEbpf, nf::Variant::kKernel,
                                  nf::Variant::kEnetstl};

  // -------------------------------------------------------------------------
  // Curve 1: throughput vs burst size (single core).
  // -------------------------------------------------------------------------
  bench::PrintHeader(
      "Scaling curve 1: cuckoo-switch throughput vs burst size\n"
      "(burst 1 = per-packet dispatch; bursts run the two-stage batched "
      "lookup)");
  bench::PrintSweepHeader("burst");

  const u32 bursts[] = {1, 8, 32, 64};
  double per_packet_enetstl = 0.0;
  double burst8_enetstl = 0.0;
  for (const u32 burst : bursts) {
    double mpps[3] = {0.0, 0.0, 0.0};
    for (int v = 0; v < 3; ++v) {
      auto sw = MakeSwitch(variants[v], resident);
      if (burst == 1) {
        mpps[v] = bench::MeasureMpps(sw->Handler(), trace);
      } else {
        mpps[v] = bench::MeasureBurstMpps(*sw, trace, burst);
      }
    }
    bench::PrintSweepRow(burst == 1 ? "1 (per-pkt)" : std::to_string(burst),
                         mpps[0], mpps[1], mpps[2]);
    const std::string param = "burst" + std::to_string(burst);
    report.Add("ebpf", param, mpps[0]);
    report.Add("kernel", param, mpps[1]);
    report.Add("enetstl", param, mpps[2]);
    if (burst == 1) {
      per_packet_enetstl = mpps[2];
    } else if (burst == 8) {
      burst8_enetstl = mpps[2];
    }
  }
  const bool burst_win = burst8_enetstl > per_packet_enetstl;
  std::printf("-- batched eNetSTL (burst 8) vs per-packet: %+.1f%%  [%s]\n",
              bench::PercentGain(burst8_enetstl, per_packet_enetstl),
              burst_win ? "PASS" : "FAIL (timing-dependent, not fatal)");

  // -------------------------------------------------------------------------
  // Curve 2: throughput vs simulated cores (RSS sharding).
  // -------------------------------------------------------------------------
  bench::PrintHeader(
      "Scaling curve 2: cuckoo-switch throughput vs simulated cores\n"
      "(RSS flow sharding, burst 32, per-worker replicas; per-shard rates\n"
      "from thread CPU time — simulated cores share the host's vCPU budget)");
  bench::PrintSweepHeader("cores");

  bool sums_ok = true;
  std::vector<double> enetstl_by_cores;
  // Fixed worker counts: the report's key set must not depend on the host
  // (bench_diff compares baselines across machines).
  for (const u32 workers : {1u, 2u, 4u}) {
    double mpps[3] = {0.0, 0.0, 0.0};
    for (int v = 0; v < 3; ++v) {
      const auto point =
          MeasureShardedMpps(variants[v], resident, trace, workers);
      sums_ok = sums_ok && point.sums_ok;
      mpps[v] = point.mpps;
    }
    bench::PrintSweepRow(std::to_string(workers), mpps[0], mpps[1], mpps[2]);
    const std::string param = "cores" + std::to_string(workers);
    report.Add("ebpf", param, mpps[0]);
    report.Add("kernel", param, mpps[1]);
    report.Add("enetstl", param, mpps[2]);
    enetstl_by_cores.push_back(mpps[2]);
  }

  std::printf("-- per-CPU stats sum exactly to global totals: %s\n",
              sums_ok ? "PASS" : "FAIL");
  if (enetstl_by_cores.size() >= 2) {
    const bool monotonic = enetstl_by_cores[1] > enetstl_by_cores[0];
    std::printf("-- eNetSTL aggregate throughput 1 -> 2 cores: %+.1f%%  [%s]\n",
                bench::PercentGain(enetstl_by_cores[1], enetstl_by_cores[0]),
                monotonic ? "PASS" : "FAIL (timing-dependent, not fatal)");
  }

  // -------------------------------------------------------------------------
  // Curve 3: the scale-out matrix — shards x Zipf skew x burst, static RSS
  // vs the migrating datapath.
  // -------------------------------------------------------------------------
  bench::PrintHeader(
      "Scaling curve 3: scale-out matrix (shards x Zipf skew x burst)\n"
      "(eNetSTL replicas at 95% load, full 16k-flow trace; offered rate =\n"
      "packets / makespan, makespan = the busiest shard's own CPU time;\n"
      "'migrate' adds the obs-driven flow-migration controller donating\n"
      "flow-groups over the MPSC handoff rings)");

  // Chosen by scanning RSS seeds for a worst case the matrix should expose:
  // at 8 shards the Zipf-1.1 elephants collide on one worker (static
  // hot-shard share 0.44 of the offered load) while no single flow-group is
  // itself heavy enough to pin the migrating datapath (max slot share
  // 0.147), so migration has real headroom and a real floor.
  constexpr u32 kMatrixRssSeed = 61161;
  const u32 shard_counts[] = {1, 2, 4, 8, 16};
  const double alphas[] = {0.0, 0.9, 1.1};
  const u32 matrix_bursts[] = {16, 32, 64};

  // Tuned for a single oversubscribed vCPU: the controller thread competes
  // with every worker for the same core, so its effective window is the
  // scheduler's wake latency, not window_us. A one-window trigger with a
  // generous per-round budget converges in a small fraction of the run;
  // the migration makespan then reflects the balanced steady state rather
  // than the controller's scheduling luck.
  pktgen::MigrationPolicy migrate_policy;
  migrate_policy.enabled = true;
  migrate_policy.window_us = 100;
  migrate_policy.k_windows = 1;
  migrate_policy.skew_threshold = 1.10;
  migrate_policy.max_slots_per_round = 16;
  pktgen::MigrationPolicy static_policy;
  static_policy.enabled = false;

  const auto enetstl_program =
      [&resident](u32 /*cpu*/) -> pktgen::ShardedPipeline::ShardProgram {
    std::shared_ptr<nf::CuckooSwitchBase> sw =
        MakeSwitch(nf::Variant::kEnetstl, resident);
    return {[sw](ebpf::XdpContext* ctxs, u32 count,
                 ebpf::XdpAction* verdicts) {
              sw->ProcessBurst(ctxs, count, verdicts);
            },
            nullptr};
  };

  bool matrix_ok = true;
  double gate_ratio = 0.0, gate_eff = 0.0;  // at s8 / z1.1 / b32
  for (const double alpha : alphas) {
    const auto skew_trace =
        alpha == 0.0 ? pktgen::MakeUniformTrace(flows, 16384, 75)
                     : pktgen::MakeZipfTrace(flows, 16384, alpha, 75);
    char ztag[16];
    std::snprintf(ztag, sizeof(ztag), "z%g", alpha);
    for (const u32 burst : matrix_bursts) {
      std::printf("\n-- %s burst %u --\n", ztag, burst);
      std::printf("  %-7s %11s %12s %11s %11s\n", "shards", "static",
                  "migrate", "vs static", "efficiency");
      double static_s1 = 0.0;
      for (const u32 shards : shard_counts) {
        pktgen::ShardedPipeline::Options opts;
        opts.num_workers = shards;
        opts.burst_size = burst;
        // Scale the run with the shard count: migration balances REMAINING
        // work, so the hot shard's pre-convergence head start is a fixed
        // cost that must be amortized over a longer run the more shards
        // there are to converge across.
        opts.measure_packets = bench::EnvPackets(500'000) * shards;
        opts.warmup_packets = opts.measure_packets / 20;
        opts.rss_seed = kMatrixRssSeed;
        const pktgen::ShardedPipeline pipeline(opts);

        double mpps[2] = {0.0, 0.0};
        for (int m = 0; m < 2; ++m) {
          const auto result = pipeline.MeasureScaleOut(
              enetstl_program, skew_trace,
              m == 0 ? static_policy : migrate_policy);
          matrix_ok = matrix_ok &&
                      result.total.packets == opts.measure_packets &&
                      result.failed_workers == 0;
          mpps[m] = result.offered_pps / 1e6;
        }
        const double ratio = mpps[0] > 0.0 ? mpps[1] / mpps[0] : 0.0;
        if (shards == 1) {
          static_s1 = mpps[0];
        }
        const double eff =
            static_s1 > 0.0 ? mpps[1] / (shards * static_s1) : 0.0;
        std::printf("  %-7u %9.2f %12.2f %10.2fx %11.2f\n", shards, mpps[0],
                    mpps[1], ratio, eff);

        char param[32];
        std::snprintf(param, sizeof(param), "s%u_%s_b%u", shards, ztag,
                      burst);
        report.Add("static", param, mpps[0]);
        report.Add("migrate", param, mpps[1]);
        report.Add("efficiency", param, eff);
        if (shards == 8 && alpha == 1.1 && burst == 32) {
          gate_ratio = ratio;
          gate_eff = eff;
        }
      }
    }
  }

  std::printf("\n-- scale-out packet accounting exact in every cell: %s\n",
              matrix_ok ? "PASS" : "FAIL");
  // The skew acceptance gate. Under a truncated CI run
  // (ENETSTL_BENCH_MEASURE_PACKETS) the migration controller gets too few
  // windows for the ratio to be meaningful, so the gate is advisory there
  // and fatal on a full run.
  const bool full_run = bench::EnvPackets(0) == 0;
  const bool gate_ok = gate_ratio >= 2.0 && gate_eff >= 0.75;
  std::printf("-- skew gate @ s8/z1.1/b32: migrate %.2fx static (need >= "
              "2.00), efficiency %.2f (need >= 0.75)  [%s]\n",
              gate_ratio, gate_eff,
              gate_ok ? "PASS"
                      : (full_run ? "FAIL" : "FAIL (truncated run, not fatal)"));

  if (!sums_ok || !matrix_ok) {
    return 1;  // deterministic invariants are always fatal
  }
  return full_run && !gate_ok ? 1 : 0;
}
