// Figure 5: per-packet processing time of the NFs (the paper brackets each
// program with bpf_ktime_get_ns; here the throughput pipeline's ns/packet is
// the same quantity measured over a long window). Claim to reproduce:
// eNetSTL reduces per-packet processing time versus pure eBPF.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  std::string only;
  if (const int code = bench::HandleRegistryArgs(&argc, argv, &only);
      code >= 0) {
    return code;
  }
  bench::PrintHeader("Figure 5: per-packet processing time (ns/packet)");
  std::printf("%-16s %12s %12s %12s %14s\n", "nf", "eBPF", "Kernel", "eNetSTL",
              "STL vs eBPF(%)");
  auto roster = nf::MakeBenchRoster();
  const auto pipeline = bench::MakePipeline();
  for (auto& setup : roster) {
    if (!only.empty() && setup.name != only) {
      continue;
    }
    double e = 0, k = 0, s = 0;
    if (setup.ebpf) {
      e = pipeline.MeasureThroughput(setup.ebpf->Handler(), setup.trace)
              .ns_per_packet;
    }
    k = pipeline.MeasureThroughput(setup.kernel->Handler(), setup.trace)
            .ns_per_packet;
    s = pipeline.MeasureThroughput(setup.enetstl->Handler(), setup.trace)
            .ns_per_packet;
    if (setup.ebpf) {
      std::printf("%-16s %12.1f %12.1f %12.1f %+14.1f\n", setup.name.c_str(),
                  e, k, s, (e - s) / e * 100.0);
    } else {
      std::printf("%-16s %12s %12.1f %12.1f %14s\n", setup.name.c_str(),
                  "n/a (P1)", k, s, "enabled");
    }
  }
  std::printf("-- expectation (paper): eNetSTL < eBPF for every NF\n");
  return 0;
}
