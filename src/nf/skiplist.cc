#include "nf/skiplist.h"

#include "nf/nf_registry.h"

#include "pktgen/flowgen.h"

namespace nf {

namespace {

inline u64 XorShift64(u64& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

// Geometric height with p = 1/2, capped at the configured maximum.
inline u32 GeometricHeight(u64& state, u32 max_height) {
  u32 h = 1;
  u64 bits = XorShift64(state);
  while ((bits & 1ull) != 0 && h < max_height) {
    ++h;
    bits >>= 1;
    if (bits == 0) {
      bits = XorShift64(state);
    }
  }
  return h;
}

inline void PrefetchRead(const void* p) {
#if defined(__GNUC__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline SkipValue ValueFromTuple(const ebpf::FiveTuple& tuple) {
  SkipValue v;
  for (u32 off = 0; off + sizeof(tuple) <= kSkipValueSize;
       off += sizeof(tuple)) {
    std::memcpy(v.bytes + off, &tuple, sizeof(tuple));
  }
  return v;
}

}  // namespace

ebpf::XdpAction SkipListBase::Process(ebpf::XdpContext& ctx) {
  ebpf::FiveTuple tuple;
  if (!ebpf::ParseFiveTuple(ctx, &tuple)) {
    return ebpf::XdpAction::kAborted;
  }
  u32 op = 0;
  std::memcpy(&op, ctx.data + ebpf::kL4HeaderOffset + 8, 4);
  const SkipKey key = SkipKey::FromTuple(tuple);
  switch (static_cast<pktgen::KvOp>(op)) {
    case pktgen::KvOp::kLookup: {
      SkipValue value;
      return Lookup(key, &value) ? ebpf::XdpAction::kPass
                                 : ebpf::XdpAction::kDrop;
    }
    case pktgen::KvOp::kUpdate:
      Update(key, ValueFromTuple(tuple));
      return ebpf::XdpAction::kDrop;
    case pktgen::KvOp::kDelete:
      return Erase(key) ? ebpf::XdpAction::kDrop : ebpf::XdpAction::kPass;
  }
  return ebpf::XdpAction::kAborted;
}

void SkipListBase::ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                                ebpf::XdpAction* verdicts) {
  SkipKey keys[kMaxNfBurst];
  SkipValue values[kMaxNfBurst];
  bool found[kMaxNfBurst];
  u32 pkt[kMaxNfBurst];
  u32 i = 0;
  while (i < count) {
    ebpf::FiveTuple tuple;
    if (!ebpf::ParseFiveTuple(ctxs[i], &tuple)) {
      verdicts[i++] = ebpf::XdpAction::kAborted;
      continue;
    }
    u32 op = 0;
    std::memcpy(&op, ctxs[i].data + ebpf::kL4HeaderOffset + 8, 4);
    if (static_cast<pktgen::KvOp>(op) != pktgen::KvOp::kLookup) {
      verdicts[i] = Process(ctxs[i]);
      ++i;
      continue;
    }
    // Gather the contiguous lookup run; a mutation or malformed packet ends
    // it (without being consumed), preserving the scalar op interleaving.
    u32 m = 0;
    while (i < count && m < kMaxNfBurst) {
      ebpf::FiveTuple t;
      if (!ebpf::ParseFiveTuple(ctxs[i], &t)) {
        break;
      }
      u32 run_op = 0;
      std::memcpy(&run_op, ctxs[i].data + ebpf::kL4HeaderOffset + 8, 4);
      if (static_cast<pktgen::KvOp>(run_op) != pktgen::KvOp::kLookup) {
        break;
      }
      keys[m] = SkipKey::FromTuple(t);
      pkt[m] = i;
      ++m;
      ++i;
    }
    LookupBatch(keys, m, values, found);
    for (u32 j = 0; j < m; ++j) {
      verdicts[pkt[j]] =
          found[j] ? ebpf::XdpAction::kPass : ebpf::XdpAction::kDrop;
    }
  }
}

// ---------------------------------------------------------------------------
// SkipListKernel: native pointers.
// ---------------------------------------------------------------------------

SkipListKernel::SkipListKernel(u64 seed) : rng_state_(seed | 1ull) {
  head_ = new Node();
  head_->height = kSkipListMaxHeight;
  for (u32 i = 0; i < kSkipListMaxHeight; ++i) {
    head_->next[i] = nullptr;
  }
}

SkipListKernel::~SkipListKernel() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0];
    delete node;
    node = next;
  }
}

u32 SkipListKernel::RandomHeight() {
  return GeometricHeight(rng_state_, kSkipListMaxHeight);
}

bool SkipListKernel::Lookup(const SkipKey& key, SkipValue* value) {
  Node* x = head_;
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (x->next[lvl] != nullptr && CompareKeys(x->next[lvl]->key, key) < 0) {
      x = x->next[lvl];
    }
  }
  Node* cand = x->next[0];
  if (cand != nullptr && cand->key == key) {
    *value = cand->value;
    return true;
  }
  return false;
}

void SkipListKernel::LookupBatch(const SkipKey* keys, u32 n, SkipValue* values,
                                 bool* found) {
  if (n > kMaxNfBurst) {
    ForEachNfChunk(n, [&](u32 start, u32 chunk) {
      LookupBatch(keys + start, chunk, values + start, found + start);
    });
    return;
  }
  // Frontier walk: every still-searching key advances one hop per round; the
  // round's successor nodes are prefetched as a group before any key compare
  // touches them, so the per-key pointer-chase misses overlap.
  Node* x[kMaxNfBurst];
  Node* next[kMaxNfBurst];
  int lvl[kMaxNfBurst];
  bool done[kMaxNfBurst];
  u32 active = n;
  for (u32 i = 0; i < n; ++i) {
    x[i] = head_;
    lvl[i] = static_cast<int>(cur_height_) - 1;
    done[i] = false;
    found[i] = false;
  }
  while (active > 0) {
    for (u32 i = 0; i < n; ++i) {
      if (done[i]) {
        continue;
      }
      next[i] = x[i]->next[lvl[i]];
      if (next[i] != nullptr) {
        PrefetchRead(next[i]);
      }
    }
    for (u32 i = 0; i < n; ++i) {
      if (done[i]) {
        continue;
      }
      Node* nx = next[i];
      if (nx != nullptr && CompareKeys(nx->key, keys[i]) < 0) {
        x[i] = nx;
      } else if (lvl[i] > 0) {
        --lvl[i];
      } else {
        // Bottom level stop: nx is exactly the candidate the scalar path
        // re-fetches (first node >= key at level 0).
        if (nx != nullptr && nx->key == keys[i]) {
          values[i] = nx->value;
          found[i] = true;
        }
        done[i] = true;
        --active;
      }
    }
  }
}

void SkipListKernel::Update(const SkipKey& key, const SkipValue& value) {
  Node* preds[kSkipListMaxHeight];
  for (u32 lvl = cur_height_; lvl < kSkipListMaxHeight; ++lvl) {
    preds[lvl] = head_;  // levels above the populated height
  }
  Node* x = head_;
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (x->next[lvl] != nullptr && CompareKeys(x->next[lvl]->key, key) < 0) {
      x = x->next[lvl];
    }
    preds[lvl] = x;
  }
  Node* cand = x->next[0];
  if (cand != nullptr && cand->key == key) {
    cand->value = value;
    return;
  }
  const u32 height = RandomHeight();
  if (height > cur_height_) {
    cur_height_ = height;
  }
  Node* node = new Node();
  node->key = key;
  node->value = value;
  node->height = height;
  for (u32 lvl = 0; lvl < height; ++lvl) {
    node->next[lvl] = preds[lvl]->next[lvl];
    preds[lvl]->next[lvl] = node;
  }
  for (u32 lvl = height; lvl < kSkipListMaxHeight; ++lvl) {
    node->next[lvl] = nullptr;
  }
  ++size_;
}

bool SkipListKernel::Erase(const SkipKey& key) {
  Node* preds[kSkipListMaxHeight];
  for (u32 lvl = cur_height_; lvl < kSkipListMaxHeight; ++lvl) {
    preds[lvl] = head_;
  }
  Node* x = head_;
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (x->next[lvl] != nullptr && CompareKeys(x->next[lvl]->key, key) < 0) {
      x = x->next[lvl];
    }
    preds[lvl] = x;
  }
  Node* cand = x->next[0];
  if (cand == nullptr || !(cand->key == key)) {
    return false;
  }
  for (u32 lvl = 0; lvl < cand->height; ++lvl) {
    if (preds[lvl]->next[lvl] == cand) {
      preds[lvl]->next[lvl] = cand->next[lvl];
    }
  }
  delete cand;
  --size_;
  return true;
}

// ---------------------------------------------------------------------------
// SkipListEnetstl: memory-wrapper nodes, reference-counted traversal.
// ---------------------------------------------------------------------------

SkipListEnetstl::SkipListEnetstl(u64 seed, enetstl::NodeProxy::CheckMode mode)
    : proxy_(mode), rng_state_(seed | 1ull) {
  head_ = proxy_.NodeAlloc(kSkipListMaxHeight, 0, sizeof(u32));
  proxy_.SetOwner(head_);
  const u32 height = kSkipListMaxHeight;
  proxy_.NodeWrite(head_, 0, &height, sizeof(height));
  // The constructor's alloc reference is handed over to the proxy.
  proxy_.NodeRelease(head_);
}

SkipListEnetstl::~SkipListEnetstl() = default;  // proxy destructor frees all

u32 SkipListEnetstl::RandomHeight() {
  return GeometricHeight(rng_state_, kSkipListMaxHeight);
}

namespace {

// The node payload starts with the key; reads of kfunc-returned node memory
// are bounds-verified from metadata, so the key compare reads it in place
// through the parallel-compare kernel (enetstl_cmp_key32's implementation).
inline int CompareNodeKey(const enetstl::Node* node, const SkipKey& key) {
  return enetstl::internal::CompareKey32Impl(node->data(), key.bytes);
}

}  // namespace

bool SkipListEnetstl::Lookup(const SkipKey& key, SkipValue* value) {
  enetstl::Node* x = head_;       // borrowed: proxy keeps the head alive
  enetstl::Node* x_ref = nullptr; // the reference we currently hold (if any)
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (true) {
      enetstl::Node* next = proxy_.GetNext(x, static_cast<u32>(lvl));
      if (next == nullptr) {
        break;
      }
      if (CompareNodeKey(next, key) < 0) {
        if (x_ref != nullptr) {
          proxy_.NodeRelease(x_ref);
        }
        x = next;
        x_ref = next;
      } else {
        proxy_.NodeRelease(next);
        break;
      }
    }
  }
  enetstl::Node* cand = proxy_.GetNext(x, 0);
  bool found = false;
  if (cand != nullptr) {
    if (CompareNodeKey(cand, key) == 0) {
      proxy_.NodeRead(cand, kValueOff, value->bytes, kSkipValueSize);
      found = true;
    }
    proxy_.NodeRelease(cand);
  }
  if (x_ref != nullptr) {
    proxy_.NodeRelease(x_ref);
  }
  return found;
}

void SkipListEnetstl::LookupBatch(const SkipKey* keys, u32 n,
                                  SkipValue* values, bool* found) {
  if (n > kMaxNfBurst) {
    ForEachNfChunk(n, [&](u32 start, u32 chunk) {
      LookupBatch(keys + start, chunk, values + start, found + start);
    });
    return;
  }
  // Frontier walk over the per-level GetNext chains: one GetNextBatch call
  // boundary advances every still-searching key one hop, with the targets
  // prefetched as a group inside the kfunc (the HashPrefetchBatch two-stage
  // pattern applied to pointer chains). The reference discipline per key is
  // identical to the scalar Lookup: hold at most one traversal reference
  // (the current predecessor) plus the in-flight successor.
  enetstl::Node* x[kMaxNfBurst];
  enetstl::Node* x_ref[kMaxNfBurst];
  int lvl[kMaxNfBurst];
  bool done[kMaxNfBurst];
  enetstl::Node* req_node[kMaxNfBurst];
  u32 req_idx[kMaxNfBurst];
  u32 req_key[kMaxNfBurst];
  enetstl::Node* next[kMaxNfBurst];
  u32 active = n;
  for (u32 i = 0; i < n; ++i) {
    x[i] = head_;
    x_ref[i] = nullptr;
    lvl[i] = static_cast<int>(cur_height_) - 1;
    done[i] = false;
    found[i] = false;
  }
  while (active > 0) {
    u32 m = 0;
    for (u32 i = 0; i < n; ++i) {
      if (done[i]) {
        continue;
      }
      req_node[m] = x[i];
      req_idx[m] = static_cast<u32>(lvl[i]);
      req_key[m] = i;
      ++m;
    }
    proxy_.GetNextBatch(req_node, req_idx, m, next);
    for (u32 j = 0; j < m; ++j) {
      const u32 i = req_key[j];
      enetstl::Node* nx = next[j];
      if (nx != nullptr && CompareNodeKey(nx, keys[i]) < 0) {
        if (x_ref[i] != nullptr) {
          proxy_.NodeRelease(x_ref[i]);
        }
        x[i] = nx;
        x_ref[i] = nx;
      } else if (lvl[i] > 0) {
        if (nx != nullptr) {
          proxy_.NodeRelease(nx);
        }
        --lvl[i];
      } else {
        // Bottom level stop: nx is exactly the candidate the scalar path
        // re-fetches (first node >= key at level 0).
        if (nx != nullptr) {
          if (CompareNodeKey(nx, keys[i]) == 0) {
            proxy_.NodeRead(nx, kValueOff, values[i].bytes, kSkipValueSize);
            found[i] = true;
          }
          proxy_.NodeRelease(nx);
        }
        if (x_ref[i] != nullptr) {
          proxy_.NodeRelease(x_ref[i]);
          x_ref[i] = nullptr;
        }
        done[i] = true;
        --active;
      }
    }
  }
}

void SkipListEnetstl::Update(const SkipKey& key, const SkipValue& value) {
  enetstl::Node* preds[kSkipListMaxHeight];
  for (u32 lvl = cur_height_; lvl < kSkipListMaxHeight; ++lvl) {
    preds[lvl] = head_;
  }
  enetstl::Node* x = head_;
  enetstl::Node* x_ref = nullptr;
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (true) {
      enetstl::Node* next = proxy_.GetNext(x, static_cast<u32>(lvl));
      if (next == nullptr) {
        break;
      }
      if (CompareNodeKey(next, key) < 0) {
        if (x_ref != nullptr) {
          proxy_.NodeRelease(x_ref);
        }
        x = next;
        x_ref = next;
      } else {
        proxy_.NodeRelease(next);
        break;
      }
    }
    // Hold a per-level reference on the predecessor (head is proxy-owned).
    preds[lvl] = x;
    if (x != head_) {
      proxy_.NodeAcquire(x);
    }
  }
  if (x_ref != nullptr) {
    proxy_.NodeRelease(x_ref);
  }

  auto release_preds = [&]() {
    for (u32 lvl = 0; lvl < kSkipListMaxHeight; ++lvl) {
      if (preds[lvl] != head_) {
        proxy_.NodeRelease(preds[lvl]);
      }
    }
  };

  enetstl::Node* cand = proxy_.GetNext(preds[0], 0);
  if (cand != nullptr) {
    if (CompareNodeKey(cand, key) == 0) {
      proxy_.NodeWrite(cand, kValueOff, value.bytes, kSkipValueSize);
      proxy_.NodeRelease(cand);
      release_preds();
      return;
    }
    proxy_.NodeRelease(cand);
  }

  const u32 height = RandomHeight();
  if (height > cur_height_) {
    cur_height_ = height;
  }
  enetstl::Node* node = proxy_.NodeAlloc(height, height, kDataSize);
  if (node == nullptr) {  // verifier-mandated null check
    release_preds();
    return;
  }
  proxy_.NodeWrite(node, kKeyOff, key.bytes, kSkipKeySize);
  proxy_.NodeWrite(node, kValueOff, value.bytes, kSkipValueSize);
  proxy_.NodeWrite(node, kHeightOff, &height, sizeof(height));
  proxy_.SetOwner(node);

  for (u32 lvl = 0; lvl < height; ++lvl) {
    enetstl::Node* succ = proxy_.GetNext(preds[lvl], lvl);
    if (succ != nullptr) {
      proxy_.NodeConnect(node, lvl, succ, lvl);
      proxy_.NodeRelease(succ);
    }
    proxy_.NodeConnect(preds[lvl], lvl, node, lvl);
  }
  proxy_.NodeRelease(node);  // ownership stays with the proxy
  release_preds();
  ++size_;
}

bool SkipListEnetstl::Erase(const SkipKey& key) {
  enetstl::Node* preds[kSkipListMaxHeight];
  for (u32 lvl = cur_height_; lvl < kSkipListMaxHeight; ++lvl) {
    preds[lvl] = head_;
  }
  enetstl::Node* x = head_;
  enetstl::Node* x_ref = nullptr;
  for (int lvl = static_cast<int>(cur_height_) - 1; lvl >= 0; --lvl) {
    while (true) {
      enetstl::Node* next = proxy_.GetNext(x, static_cast<u32>(lvl));
      if (next == nullptr) {
        break;
      }
      if (CompareNodeKey(next, key) < 0) {
        if (x_ref != nullptr) {
          proxy_.NodeRelease(x_ref);
        }
        x = next;
        x_ref = next;
      } else {
        proxy_.NodeRelease(next);
        break;
      }
    }
    preds[lvl] = x;
    if (x != head_) {
      proxy_.NodeAcquire(x);
    }
  }
  if (x_ref != nullptr) {
    proxy_.NodeRelease(x_ref);
  }

  auto release_preds = [&]() {
    for (u32 lvl = 0; lvl < kSkipListMaxHeight; ++lvl) {
      if (preds[lvl] != head_) {
        proxy_.NodeRelease(preds[lvl]);
      }
    }
  };

  enetstl::Node* cand = proxy_.GetNext(preds[0], 0);
  if (cand == nullptr || CompareNodeKey(cand, key) != 0) {
    if (cand != nullptr) {
      proxy_.NodeRelease(cand);
    }
    release_preds();
    return false;
  }

  u32 height = 0;
  proxy_.NodeRead(cand, kHeightOff, &height, sizeof(height));
  // Bypass the victim at every level it participates in: well-implemented
  // functions update relationships before release, keeping the release-time
  // lazy cleanup a no-op on the hot structure.
  for (u32 lvl = 0; lvl < height; ++lvl) {
    enetstl::Node* at = proxy_.GetNext(preds[lvl], lvl);
    if (at == cand) {
      enetstl::Node* succ = proxy_.GetNext(cand, lvl);
      if (succ != nullptr) {
        proxy_.NodeConnect(preds[lvl], lvl, succ, lvl);
        proxy_.NodeRelease(succ);
      } else {
        proxy_.NodeDisconnect(preds[lvl], lvl);
      }
    }
    if (at != nullptr) {
      proxy_.NodeRelease(at);
    }
  }
  proxy_.UnsetOwner(cand);   // drop the proxy's reference
  proxy_.NodeRelease(cand);  // drop ours: node destroys here
  release_preds();
  --size_;
  return true;
}

namespace builtin {

void RegisterSkipList(NfRegistry& registry) {
  NfEntry entry;
  entry.name = "skiplist-kv";
  entry.category = "key-value query";
  entry.variants = {Variant::kKernel, Variant::kEnetstl};
  entry.caps.batched = true;
  entry.factory = [](Variant v) -> std::unique_ptr<NetworkFunction> {
    switch (v) {
      case Variant::kKernel:
        return std::make_unique<SkipListKernel>();
      case Variant::kEnetstl:
        return std::make_unique<SkipListEnetstl>();
      default:
        return nullptr;  // pure eBPF cannot express the pointer chase (P1)
    }
  };
  entry.prime = [](const std::vector<NetworkFunction*>& nfs,
                   const BenchEnv& env) {
    for (u32 i = 0; i < 2048; ++i) {
      const SkipValue value{};
      for (NetworkFunction* nf : nfs) {
        static_cast<SkipListBase*>(nf)->Update(SkipKey::FromTuple(env.flows[i]),
                                               value);
      }
    }
    return pktgen::MakeOpMixTrace(
        std::vector<ebpf::FiveTuple>(env.flows.begin(),
                                     env.flows.begin() + 2048),
        16384, 1.0, 0.0, 0.0, 74);
  };
  registry.Register(std::move(entry));
}

}  // namespace builtin

}  // namespace nf
