// Miniature PolyCube-style service chain (Figure 7 integration case):
// an ACL stage (deny-list membership over the 5-tuple), a DDoS-mitigation
// stage (per-source rate estimation, as PolyCube's ddosmitigator service),
// and an IP routing stage (dst-ip -> port).
//
// The three services are real chain stages: each one is its own
// NetworkFunction wrapped in an XDP program, and PcnBridge composes them
// through a ChainExecutor (prog-array + bpf_tail_call walk), the way
// PolyCube links its services into one datapath. The facade stays a single
// NetworkFunction so existing apps/benches are unchanged — and it gains the
// chain's batched burst path for free.
//
// The component swap mirrors the paper's PolyCube integration: the
// map-based cores of the ACL and the rate estimator are replaced by eNetSTL
// implementations — a fused-hash bloom deny-list (hash_set_bits /
// hash_test_bits kfuncs) and a fused-hash count-min sketch. The routing
// stage keeps its BPF hash table in both cores (it is not one of the
// swapped components).
#ifndef ENETSTL_APPS_PCN_BRIDGE_H_
#define ENETSTL_APPS_PCN_BRIDGE_H_

#include <memory>

#include "apps/katran_lb.h"  // CoreKind
#include "ebpf/maps.h"
#include "nf/chain.h"
#include "nf/cms.h"
#include "nf/nf_interface.h"

namespace apps {

struct PcnBridgeConfig {
  u32 acl_capacity = 4096;    // deny-list entries (origin hash map)
  u32 acl_bits = 1u << 16;    // eNetSTL bloom bits (power of two)
  u32 acl_hashes = 4;
  u32 rate_rows = 4;          // DDoS estimator sketch shape
  u32 rate_cols = 8192;
  u32 rate_threshold = 0xffffffffu;  // per-source packet budget (off by default)
  u32 route_capacity = 8192;
  u32 seed = 0x811c9dc5u;
};

// Stage 1: ACL deny list over the 5-tuple. Unparseable packets abort here
// (the chain's entry program owns packet validation, as PolyCube's first
// service does). Origin = exact-match BPF hash map; eNetSTL = fused-hash
// bloom filter.
class PcnAclStage : public nf::NetworkFunction {
 public:
  PcnAclStage(CoreKind core, const PcnBridgeConfig& config);

  void BlockFlow(const ebpf::FiveTuple& tuple);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  std::string_view name() const override { return "pcn-acl"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

 private:
  CoreKind core_;
  PcnBridgeConfig config_;
  std::unique_ptr<ebpf::HashMap<ebpf::FiveTuple, u32>> acl_map_;
  std::unique_ptr<ebpf::RawArrayMap> acl_bloom_map_;
};

// Stage 2: DDoS mitigation — per-source packet-rate estimate against a
// budget. Count-min sketch, eBPF core vs eNetSTL core.
class PcnRateStage : public nf::NetworkFunction {
 public:
  PcnRateStage(CoreKind core, const PcnBridgeConfig& config);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  std::string_view name() const override { return "pcn-rate"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

 private:
  CoreKind core_;
  PcnBridgeConfig config_;
  std::unique_ptr<nf::CmsBase> rate_sketch_;
};

// Stage 3: route lookup on destination IP; the same BPF hash table in both
// cores (not one of the swapped components).
class PcnRouteStage : public nf::NetworkFunction {
 public:
  explicit PcnRouteStage(const PcnBridgeConfig& config);

  bool AddRoute(u32 dst_ip, u32 port);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  std::string_view name() const override { return "pcn-route"; }
  nf::Variant variant() const override { return nf::Variant::kEbpf; }

 private:
  ebpf::HashMap<u32, u32> route_map_;
};

// Facade: the three stages composed through a tail-call chain.
class PcnBridge : public nf::NetworkFunction {
 public:
  PcnBridge(CoreKind core, const PcnBridgeConfig& config);

  // Control plane (forwarded to the owning stages).
  void BlockFlow(const ebpf::FiveTuple& tuple);  // add to ACL deny list
  bool AddRoute(u32 dst_ip, u32 port);

  // Datapath: one tail-call walk — ACL -> rate -> route.
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  // Burst path: the chain's stage-major partition-and-regroup schedule,
  // verdict-identical to per-packet Process.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts) override;

  std::string_view name() const override { return "pcn-chain"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

  // Counters are the chain's per-stage verdict histogram.
  u64 blocked() const { return chain_.stage_stats()[0].drop; }
  u64 rate_limited() const { return chain_.stage_stats()[1].drop; }
  u64 routed() const { return chain_.stage_stats()[2].tx; }
  u64 unrouted() const { return chain_.stage_stats()[2].pass; }

  const nf::ChainExecutor& chain() const { return chain_; }

 private:
  CoreKind core_;
  nf::ChainExecutor chain_;
  PcnAclStage* acl_ = nullptr;      // owned by chain_
  PcnRouteStage* route_ = nullptr;  // owned by chain_
  // Facade-level telemetry scope "app/pcn-chain", covering the whole walk;
  // the chain registers its own per-stage scopes at Load().
  ebpf::u16 obs_scope_ = 0xffff;
};

}  // namespace apps

#endif  // ENETSTL_APPS_PCN_BRIDGE_H_
