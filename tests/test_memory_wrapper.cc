// Tests for the memory wrapper: proxy-based ownership, reference counting,
// relationship bookkeeping, and — centrally — the lazy safety checking that
// makes use-after-free impossible (§4.2 of the paper).
#include "core/memory_wrapper.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pktgen/flowgen.h"

namespace enetstl {
namespace {

TEST(MemoryWrapper, AllocInitializesNode) {
  NodeProxy proxy;
  Node* n = proxy.NodeAlloc(2, 3, 16);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->num_outs, 2u);
  EXPECT_EQ(n->num_ins, 3u);
  EXPECT_EQ(n->data_size, 16u);
  EXPECT_EQ(n->refcount, 1u);
  EXPECT_EQ(n->outs()[0], nullptr);
  EXPECT_EQ(n->outs()[1], nullptr);
  EXPECT_EQ(proxy.live_nodes(), 1u);
  proxy.NodeRelease(n);
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

TEST(MemoryWrapper, AllocRejectsAbsurdSizes) {
  NodeProxy proxy;
  EXPECT_EQ(proxy.NodeAlloc(65, 0, 8), nullptr);
  EXPECT_EQ(proxy.NodeAlloc(0, 65, 8), nullptr);
  EXPECT_EQ(proxy.NodeAlloc(1, 1, 1u << 20), nullptr);
}

TEST(MemoryWrapper, SetOwnerKeepsNodeAliveAfterRelease) {
  NodeProxy proxy;
  Node* n = proxy.NodeAlloc(1, 1, 8);
  proxy.SetOwner(n);
  EXPECT_EQ(proxy.owned_nodes(), 1u);
  proxy.NodeRelease(n);  // program's reference gone; proxy still owns it
  EXPECT_EQ(proxy.live_nodes(), 1u);
  proxy.UnsetOwner(n);  // proxy reference gone -> destroyed
  EXPECT_EQ(proxy.live_nodes(), 0u);
  EXPECT_EQ(proxy.owned_nodes(), 0u);
}

TEST(MemoryWrapper, ConnectAndGetNext) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 8);
  Node* b = proxy.NodeAlloc(1, 1, 8);
  ASSERT_EQ(proxy.NodeConnect(a, 0, b, 0), ebpf::kOk);
  Node* next = proxy.GetNext(a, 0);
  EXPECT_EQ(next, b);
  EXPECT_EQ(b->refcount, 2u);  // alloc ref + GetNext ref
  proxy.NodeRelease(next);
  EXPECT_EQ(b->refcount, 1u);
  proxy.NodeRelease(a);
  proxy.NodeRelease(b);
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

TEST(MemoryWrapper, GetNextOnEmptySlotReturnsNull) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(2, 0, 8);
  EXPECT_EQ(proxy.GetNext(a, 0), nullptr);
  EXPECT_EQ(proxy.GetNext(a, 5), nullptr);  // out of range
  EXPECT_EQ(proxy.GetNext(nullptr, 0), nullptr);
  proxy.NodeRelease(a);
}

TEST(MemoryWrapper, ConnectValidatesArguments) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 8);
  Node* b = proxy.NodeAlloc(1, 1, 8);
  EXPECT_EQ(proxy.NodeConnect(nullptr, 0, b, 0), ebpf::kErrInval);
  EXPECT_EQ(proxy.NodeConnect(a, 1, b, 0), ebpf::kErrInval);
  EXPECT_EQ(proxy.NodeConnect(a, 0, b, 1), ebpf::kErrInval);
  proxy.NodeRelease(a);
  proxy.NodeRelease(b);
}

TEST(MemoryWrapper, DisconnectClearsBothDirections) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 0, 8);
  Node* b = proxy.NodeAlloc(0, 1, 8);
  proxy.NodeConnect(a, 0, b, 0);
  EXPECT_EQ(proxy.NodeDisconnect(a, 0), ebpf::kOk);
  EXPECT_EQ(proxy.GetNext(a, 0), nullptr);
  EXPECT_EQ(b->ins()[0].from, nullptr);
  // Disconnecting an empty slot is a no-op success.
  EXPECT_EQ(proxy.NodeDisconnect(a, 0), ebpf::kOk);
  proxy.NodeRelease(a);
  proxy.NodeRelease(b);
}

// THE core guarantee: releasing a node whose relationships were not cleaned
// up automatically nulls every pointer that targeted it (lazy safety
// checking). This is the A->next use-after-free scenario from §4.2.
TEST(MemoryWrapper, LazyCleanupPreventsUseAfterFree) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 8);
  Node* b = proxy.NodeAlloc(1, 1, 8);
  proxy.NodeConnect(a, 0, b, 0);  // A->next = B
  // Buggy program: releases B without disconnecting it from A.
  proxy.NodeRelease(b);
  EXPECT_EQ(proxy.live_nodes(), 1u);
  // A->next must now be NULL, not a dangling pointer.
  EXPECT_EQ(proxy.GetNext(a, 0), nullptr);
  EXPECT_EQ(a->outs()[0], nullptr);
  proxy.NodeRelease(a);
}

TEST(MemoryWrapper, LazyCleanupHandlesMultiplePredecessors) {
  NodeProxy proxy;
  Node* target = proxy.NodeAlloc(0, 4, 8);
  std::vector<Node*> preds;
  for (u32 i = 0; i < 4; ++i) {
    Node* p = proxy.NodeAlloc(1, 0, 8);
    proxy.NodeConnect(p, 0, target, i);
    preds.push_back(p);
  }
  proxy.NodeRelease(target);
  for (Node* p : preds) {
    EXPECT_EQ(p->outs()[0], nullptr);
    proxy.NodeRelease(p);
  }
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

TEST(MemoryWrapper, DestroyClearsOwnOutEdgesFromTargets) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 0, 8);
  Node* b = proxy.NodeAlloc(0, 1, 8);
  proxy.NodeConnect(a, 0, b, 0);
  proxy.NodeRelease(a);  // destroys a
  // b's in-slot must no longer reference the destroyed a.
  EXPECT_EQ(b->ins()[0].from, nullptr);
  proxy.NodeRelease(b);
}

TEST(MemoryWrapper, GetNextRefKeepsTargetAliveAcrossRelease) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 8);
  Node* b = proxy.NodeAlloc(1, 1, 8);
  proxy.NodeConnect(a, 0, b, 0);
  Node* held = proxy.GetNext(a, 0);  // refcount(b) = 2
  proxy.NodeRelease(b);              // drops alloc ref; held ref remains
  EXPECT_EQ(proxy.live_nodes(), 2u);
  u8 buf[8];
  EXPECT_EQ(proxy.NodeRead(held, 0, buf, 8), ebpf::kOk);  // still valid
  proxy.NodeRelease(held);  // now destroyed; a->out auto-nulled
  EXPECT_EQ(proxy.live_nodes(), 1u);
  EXPECT_EQ(a->outs()[0], nullptr);
  proxy.NodeRelease(a);
}

TEST(MemoryWrapper, NodeAcquireAddsReference) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(0, 0, 8);
  EXPECT_EQ(proxy.NodeAcquire(a), a);
  EXPECT_EQ(a->refcount, 2u);
  proxy.NodeRelease(a);
  EXPECT_EQ(proxy.live_nodes(), 1u);
  proxy.NodeRelease(a);
  EXPECT_EQ(proxy.live_nodes(), 0u);
  EXPECT_EQ(proxy.NodeAcquire(nullptr), nullptr);
}

TEST(MemoryWrapper, ConnectOverwriteReroutesCleanly) {
  // The Listing 3 pattern: head->B exists; insert N between head and B.
  NodeProxy proxy;
  Node* head = proxy.NodeAlloc(1, 0, 8);
  Node* b = proxy.NodeAlloc(1, 1, 8);
  Node* n = proxy.NodeAlloc(1, 1, 8);
  proxy.NodeConnect(head, 0, b, 0);
  proxy.NodeConnect(n, 0, b, 0);     // N->B (displaces head->B's reverse edge)
  proxy.NodeConnect(head, 0, n, 0);  // head->N
  Node* x = proxy.GetNext(head, 0);
  EXPECT_EQ(x, n);
  proxy.NodeRelease(x);
  x = proxy.GetNext(n, 0);
  EXPECT_EQ(x, b);
  proxy.NodeRelease(x);
  // Deleting N must auto-null head->out but leave B alive.
  proxy.NodeRelease(n);
  EXPECT_EQ(head->outs()[0], nullptr);
  proxy.NodeRelease(head);
  proxy.NodeRelease(b);
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

TEST(MemoryWrapper, SelfLoopDestructionIsSafe) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 8);
  proxy.NodeConnect(a, 0, a, 0);
  proxy.NodeRelease(a);  // must not crash or double-free
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

TEST(MemoryWrapper, NodeWriteReadBoundsChecked) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(0, 0, 16);
  const u64 v = 0x1122334455667788ull;
  EXPECT_EQ(proxy.NodeWrite(a, 0, &v, 8), ebpf::kOk);
  EXPECT_EQ(proxy.NodeWrite(a, 8, &v, 8), ebpf::kOk);
  EXPECT_EQ(proxy.NodeWrite(a, 9, &v, 8), ebpf::kErrInval);
  EXPECT_EQ(proxy.NodeWrite(a, 17, &v, 0), ebpf::kErrInval);
  u64 out = 0;
  EXPECT_EQ(proxy.NodeRead(a, 8, &out, 8), ebpf::kOk);
  EXPECT_EQ(out, v);
  EXPECT_EQ(proxy.NodeRead(a, 12, &out, 8), ebpf::kErrInval);
  EXPECT_EQ(proxy.NodeRead(nullptr, 0, &out, 8), ebpf::kErrInval);
  proxy.NodeRelease(a);
}

TEST(MemoryWrapper, ProxyDestructorFreesOwnedNodes) {
  {
    NodeProxy proxy;
    for (int i = 0; i < 100; ++i) {
      Node* n = proxy.NodeAlloc(1, 1, 32);
      proxy.SetOwner(n);
      proxy.NodeRelease(n);
    }
    EXPECT_EQ(proxy.live_nodes(), 100u);
  }  // destructor must free all without leaking (ASAN would catch leaks)
}

TEST(MemoryWrapper, FreelistRecyclesBlocks) {
  NodeProxy proxy;
  Node* a = proxy.NodeAlloc(1, 1, 64);
  proxy.NodeRelease(a);
  Node* b = proxy.NodeAlloc(1, 1, 64);  // same size class: recycled block
  EXPECT_EQ(b, a);
  // Recycled node must be fully re-initialized.
  EXPECT_EQ(b->refcount, 1u);
  EXPECT_EQ(b->outs()[0], nullptr);
  EXPECT_EQ(b->ins()[0].from, nullptr);
  proxy.NodeRelease(b);
}

// Eager mode must behave identically on correct programs (it only differs in
// when the safety check happens).
TEST(MemoryWrapper, EagerModeMatchesLazyOnChains) {
  for (auto mode : {NodeProxy::CheckMode::kLazy, NodeProxy::CheckMode::kEager}) {
    NodeProxy proxy(mode);
    // Build a chain of 10 nodes, walk it, delete the middle, re-walk.
    std::vector<Node*> nodes;
    for (int i = 0; i < 10; ++i) {
      Node* n = proxy.NodeAlloc(1, 1, 8);
      proxy.SetOwner(n);
      const u64 tag = 1000 + i;
      proxy.NodeWrite(n, 0, &tag, 8);
      if (!nodes.empty()) {
        proxy.NodeConnect(nodes.back(), 0, n, 0);
      }
      nodes.push_back(n);
      proxy.NodeRelease(n);
    }
    // Walk.
    int count = 1;
    Node* cur = nodes[0];
    Node* ref = nullptr;
    while (Node* next = proxy.GetNext(cur, 0)) {
      if (ref != nullptr) {
        proxy.NodeRelease(ref);
      }
      cur = next;
      ref = next;
      ++count;
    }
    if (ref != nullptr) {
      proxy.NodeRelease(ref);
    }
    EXPECT_EQ(count, 10);
    // Delete node 5 without rerouting: the chain must split safely.
    proxy.UnsetOwner(nodes[5]);
    EXPECT_EQ(proxy.GetNext(nodes[4], 0), nullptr);
    EXPECT_EQ(proxy.live_nodes(), 9u);
  }
}

// Randomized stress: arbitrary graph mutations never leave a dangling
// out-pointer (every GetNext returns either null or a node that is live).
TEST(MemoryWrapper, RandomGraphMutationsNeverDangle) {
  NodeProxy proxy;
  pktgen::Rng rng(424242);
  constexpr u32 kSlots = 4;
  std::vector<Node*> live;
  for (int step = 0; step < 5000; ++step) {
    const u32 op = static_cast<u32>(rng.NextBounded(10));
    if (op < 4 || live.size() < 2) {  // alloc
      if (live.size() < 64) {
        Node* n = proxy.NodeAlloc(kSlots, kSlots, 8);
        ASSERT_NE(n, nullptr);
        proxy.SetOwner(n);
        proxy.NodeRelease(n);
        live.push_back(n);
      }
    } else if (op < 8) {  // connect two random nodes
      Node* a = live[rng.NextBounded(live.size())];
      Node* b = live[rng.NextBounded(live.size())];
      proxy.NodeConnect(a, static_cast<u32>(rng.NextBounded(kSlots)), b,
                        static_cast<u32>(rng.NextBounded(kSlots)));
    } else {  // destroy a random node without any cleanup
      const std::size_t idx = rng.NextBounded(live.size());
      proxy.UnsetOwner(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    // Invariant: every out-pointer of every live node targets a live node.
    for (Node* n : live) {
      for (u32 s = 0; s < kSlots; ++s) {
        Node* t = proxy.GetNext(n, s);
        if (t != nullptr) {
          ASSERT_NE(std::find(live.begin(), live.end(), t), live.end());
          proxy.NodeRelease(t);
        }
      }
    }
  }
  EXPECT_EQ(proxy.live_nodes(), live.size());
}

// The batched traversal kfunc must be bit-identical to n scalar GetNext
// calls: same results, same refcounts, in both checking modes.
TEST(MemoryWrapper, GetNextBatchMatchesGetNext) {
  for (auto mode : {NodeProxy::CheckMode::kLazy, NodeProxy::CheckMode::kEager}) {
    NodeProxy proxy(mode);
    constexpr u32 kChain = 16;
    std::vector<Node*> nodes;
    for (u32 i = 0; i < kChain; ++i) {
      Node* n = proxy.NodeAlloc(2, 2, 8);
      ASSERT_NE(n, nullptr);
      proxy.SetOwner(n);
      nodes.push_back(n);
    }
    for (u32 i = 0; i + 1 < kChain; ++i) {
      proxy.NodeConnect(nodes[i], 0, nodes[i + 1], 0);
      if (i % 2 == 0) {
        proxy.NodeConnect(nodes[i], 1, nodes[(i + 3) % kChain], 1);
      }
    }

    // Query a mix of connected slots, empty slots, bad indices, and nulls.
    std::vector<Node*> q_nodes;
    std::vector<u32> q_idxs;
    for (u32 i = 0; i < kChain; ++i) {
      q_nodes.push_back(nodes[i]);
      q_idxs.push_back(i % 3);  // 2 is out of range -> must yield nullptr
    }
    q_nodes.push_back(nullptr);
    q_idxs.push_back(0);

    const u32 n = static_cast<u32>(q_nodes.size());
    std::vector<Node*> batched(n, nullptr);
    proxy.GetNextBatch(q_nodes.data(), q_idxs.data(), n, batched.data());
    for (u32 i = 0; i < n; ++i) {
      Node* scalar = proxy.GetNext(q_nodes[i], q_idxs[i]);
      EXPECT_EQ(batched[i], scalar) << "query " << i;
      if (scalar != nullptr) {
        proxy.NodeRelease(scalar);
      }
      if (batched[i] != nullptr) {
        proxy.NodeRelease(batched[i]);
      }
    }
    for (Node* node : nodes) {
      proxy.NodeRelease(node);
    }
    // Owned nodes are destroyed by the proxy destructor.
  }
}

// Recycled oversize blocks (shapes too big for the arena) are capped: the
// cache never holds more than kMaxCachedBytes of freed memory.
TEST(MemoryWrapper, FreedBytesHeldCapped) {
  NodeProxy proxy;
  // 32 KiB of payload per node -> oversize path (arena slots cap at 4 KiB).
  constexpr u32 kBig = 32 * 1024;
  constexpr int kChurn = 200;
  for (int round = 0; round < kChurn; ++round) {
    std::vector<Node*> batch;
    for (int i = 0; i < 4; ++i) {
      Node* n = proxy.NodeAlloc(1, 1, kBig);
      ASSERT_NE(n, nullptr);
      batch.push_back(n);
    }
    for (Node* n : batch) {
      proxy.NodeRelease(n);
    }
    ASSERT_LE(proxy.freed_bytes_held(), NodeProxy::kMaxCachedBytes);
  }
  EXPECT_GT(proxy.freed_bytes_held(), 0u);  // some caching did happen
  EXPECT_EQ(proxy.live_nodes(), 0u);
}

}  // namespace
}  // namespace enetstl
