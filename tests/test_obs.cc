// Tests for the telemetry plane: scope registry, 1/N sampling countdown
// (scalar and burst paths share one rate), percpu histogram accounting and
// snapshots, ring-buffer event emission, top-K flow sampling, and the
// exporter's percentiles/JSON. Sampling-state tests run their bodies on a
// fresh thread so the thread-local countdown starts from a known state.
#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/flow_sampler.h"

namespace obs {
namespace {

// Runs `fn` on a new thread: a fresh thread-local sampling countdown and
// sequence counter, so tests see deterministic 1/N behavior.
template <typename Fn>
void RunOnFreshThread(Fn&& fn) {
  std::thread t(std::forward<Fn>(fn));
  t.join();
}

std::vector<ObsEvent> DrainEvents(Telemetry& telemetry) {
  std::vector<ObsEvent> events;
  telemetry.ring().Consume([&](const void* data, ebpf::u32 len) {
    if (len == sizeof(ObsEvent)) {
      ObsEvent event;
      std::memcpy(&event, data, sizeof(event));
      events.push_back(event);
    }
  });
  return events;
}

TEST(ObsCompiledOut, ApiIsInertWhenDisabled) {
  if (kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=ON build";
  }
  Telemetry telemetry;
  EXPECT_EQ(telemetry.RegisterScope("x"), kInvalidScope);
  telemetry.Enable(1);
  EXPECT_FALSE(telemetry.enabled());
  EXPECT_FALSE(telemetry.ShouldSample());
  telemetry.RecordBurst(0, 100, 8, [](u32) { return 1u; });
  EXPECT_EQ(telemetry.Snapshot(0).samples, 0u);
}

TEST(ObsScopes, RegistrationIsIdempotentAndCapped) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  Telemetry telemetry;
  const u16 a = telemetry.RegisterScope("alpha");
  const u16 b = telemetry.RegisterScope("beta");
  EXPECT_NE(a, kInvalidScope);
  EXPECT_NE(b, a);
  EXPECT_EQ(telemetry.RegisterScope("alpha"), a);
  EXPECT_EQ(telemetry.ScopeName(a), "alpha");
  EXPECT_EQ(telemetry.ScopeName(kInvalidScope), "");

  for (u32 i = telemetry.ScopeNames().size(); i < kMaxScopes; ++i) {
    EXPECT_NE(telemetry.RegisterScope("fill-" + std::to_string(i)),
              kInvalidScope);
  }
  EXPECT_EQ(telemetry.RegisterScope("overflow"), kInvalidScope);
  EXPECT_EQ(telemetry.ScopeNames().size(), kMaxScopes);
}

TEST(ObsSampling, OneInEveryNAfterWarmup) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  RunOnFreshThread([] {
    Telemetry telemetry;
    telemetry.Enable(4);
    // Fresh thread: countdown lazily initializes to 4, so exactly every
    // fourth call fires, starting with the fourth.
    int fired = 0;
    for (int i = 1; i <= 400; ++i) {
      if (telemetry.ShouldSample()) {
        ++fired;
        EXPECT_EQ(i % 4, 0) << "sample fired off-cadence at call " << i;
      }
    }
    EXPECT_EQ(fired, 100);

    telemetry.Disable();
    for (int i = 0; i < 100; ++i) {
      EXPECT_FALSE(telemetry.ShouldSample());
    }
  });
}

TEST(ObsSampling, EveryZeroClampsToAlways) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  RunOnFreshThread([] {
    Telemetry telemetry;
    telemetry.Enable(0);
    EXPECT_EQ(telemetry.sample_every(), 1u);
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(telemetry.ShouldSample());
    }
  });
}

TEST(ObsHist, Log2BucketEdges) {
  EXPECT_EQ(Log2Bucket(0), 0u);
  EXPECT_EQ(Log2Bucket(1), 1u);
  EXPECT_EQ(Log2Bucket(2), 2u);
  EXPECT_EQ(Log2Bucket(3), 2u);
  EXPECT_EQ(Log2Bucket(4), 3u);
  EXPECT_EQ(Log2Bucket((1ull << 40)), 41u);
  EXPECT_EQ(Log2Bucket(~0ull), LatencyHist::kBuckets - 1);
}

TEST(ObsHist, SnapshotMergesAllCpus) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  Telemetry telemetry;
  const u16 scope = telemetry.RegisterScope("merge");
  const u32 cpu_before = ebpf::CurrentCpu();
  ebpf::SetCurrentCpu(0);
  telemetry.RecordSample(scope, 100, 1);
  ebpf::SetCurrentCpu(2);
  telemetry.RecordSample(scope, 1000, 2);
  ebpf::SetCurrentCpu(cpu_before);

  const LatencyHist merged = telemetry.Snapshot(scope);
  EXPECT_EQ(merged.samples, 2u);
  EXPECT_EQ(merged.total_ns, 1100u);
  EXPECT_EQ(merged.counts[Log2Bucket(100)], 1u);
  EXPECT_EQ(merged.counts[Log2Bucket(1000)], 1u);

  telemetry.ResetCounts();
  EXPECT_EQ(telemetry.Snapshot(scope).samples, 0u);
}

TEST(ObsBurst, SamplesMatchScalarRateAndEmitPerSlotEvents) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  RunOnFreshThread([] {
    Telemetry telemetry;
    const u16 scope = telemetry.RegisterScope("burst");
    telemetry.Enable(4);
    // Fresh countdown initializes to 4: a burst of 8 packets samples slots 3
    // and 7 (the 4th and 8th events), at the burst-average latency.
    telemetry.RecordBurst(scope, /*burst_ns=*/800, /*count=*/8,
                          [](u32 slot) { return 100 + slot; });
    const LatencyHist hist = telemetry.Snapshot(scope);
    EXPECT_EQ(hist.samples, 2u);
    EXPECT_EQ(hist.total_ns, 200u);  // 2 samples at avg 100ns
    EXPECT_EQ(hist.counts[Log2Bucket(100)], 2u);

    const std::vector<ObsEvent> events = DrainEvents(telemetry);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].scope, scope);
    EXPECT_EQ(events[0].kind, ObsEvent::kBurst);
    EXPECT_EQ(events[0].flow, 103u);
    EXPECT_EQ(events[0].latency_ns, 100u);
    EXPECT_EQ(events[1].flow, 107u);
    EXPECT_LT(events[0].seq, events[1].seq);
  });
}

TEST(ObsBurst, ShortBurstOnlyAdvancesCountdown) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  RunOnFreshThread([] {
    Telemetry telemetry;
    const u16 scope = telemetry.RegisterScope("short-burst");
    telemetry.Enable(100);
    // 8 < 100: no sample, countdown drops to 92.
    telemetry.RecordBurst(scope, 800, 8, [](u32) { return 1u; });
    EXPECT_EQ(telemetry.Snapshot(scope).samples, 0u);
    EXPECT_TRUE(DrainEvents(telemetry).empty());
    // The next 92 packets include exactly the one sampled slot (the last).
    telemetry.RecordBurst(scope, 9200, 92, [](u32 slot) { return slot; });
    EXPECT_EQ(telemetry.Snapshot(scope).samples, 1u);
    const std::vector<ObsEvent> events = DrainEvents(telemetry);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].flow, 91u);
  });
}

TEST(ObsBurst, InvalidScopeAndDisabledAreNoOps) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  RunOnFreshThread([] {
    Telemetry telemetry;
    const u16 scope = telemetry.RegisterScope("noop");
    telemetry.Enable(1);
    telemetry.RecordBurst(kInvalidScope, 100, 8, [](u32) { return 1u; });
    telemetry.Disable();
    telemetry.RecordBurst(scope, 100, 8, [](u32) { return 1u; });
    EXPECT_TRUE(DrainEvents(telemetry).empty());
    EXPECT_EQ(telemetry.Snapshot(scope).samples, 0u);
  });
}

TEST(ObsScalarSample, RaiiRecordsIntoGlobalTelemetry) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  Telemetry& telemetry = Telemetry::Global();
  const u16 scope = telemetry.RegisterScope("test/raii");
  ASSERT_NE(scope, kInvalidScope);
  const u64 samples_before = telemetry.Snapshot(scope).samples;
  RunOnFreshThread([&telemetry, scope] {
    telemetry.Enable(1);
    {
      ScalarSample sample(scope);
      EXPECT_TRUE(sample.armed());
      sample.set_flow(7);
    }
    {
      ScalarSample invalid(kInvalidScope);
      EXPECT_FALSE(invalid.armed());
    }
    telemetry.Disable();
    {
      ScalarSample off(scope);
      EXPECT_FALSE(off.armed());
    }
  });
  EXPECT_EQ(telemetry.Snapshot(scope).samples, samples_before + 1);
}

TEST(ObsPercentile, UpperEdgeOfQuantileBucket) {
  LatencyHist hist;
  EXPECT_EQ(HistPercentileNs(hist, 0.5), 0u);  // empty

  hist.counts[3] = 90;  // [4, 8) ns
  hist.counts[10] = 10;  // [512, 1024) ns
  hist.samples = 100;
  EXPECT_EQ(HistPercentileNs(hist, 0.5), 7u);
  EXPECT_EQ(HistPercentileNs(hist, 0.9), 7u);
  EXPECT_EQ(HistPercentileNs(hist, 0.99), 1023u);
  EXPECT_EQ(HistPercentileNs(hist, 1.0), 1023u);
}

TEST(ObsFlowSampler, TopKRanksHeavyFlowFirst) {
  FlowSampler sampler(8);
  ObsEvent event;
  for (int i = 0; i < 100; ++i) {
    event.flow = 7;
    sampler.Ingest(event);
  }
  for (u32 flow = 100; flow < 120; ++flow) {
    event.flow = flow;
    for (int i = 0; i < 5; ++i) {
      sampler.Ingest(event);
    }
  }
  EXPECT_EQ(sampler.events(), 200u);

  const std::vector<nf::HkTopEntry> top = sampler.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_LE(top.size(), 8u);
  EXPECT_EQ(top[0].flow, 7u);
  EXPECT_GE(top[0].est, 50u);  // sketch estimate of the 100-event flow
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].est, top[i - 1].est);
  }
}

TEST(ObsFlowSampler, IgnoresMalformedRecordsAndUnknownFlows) {
  FlowSampler sampler(8);
  const u64 not_an_event = 0;
  EXPECT_FALSE(sampler.IngestRecord(&not_an_event, sizeof(not_an_event)));
  EXPECT_EQ(sampler.events(), 0u);

  ObsEvent event;
  event.flow = 0;  // unknown flow (unparsable frame): well-formed but skipped
  EXPECT_TRUE(sampler.IngestRecord(&event, sizeof(event)));
  EXPECT_EQ(sampler.events(), 0u);
  EXPECT_TRUE(sampler.TopK().empty());
}

TEST(ObsExporter, ReportAndJsonCarryScopesAndTopFlows) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "ENETSTL_OBS=OFF build";
  }
  Telemetry telemetry;
  const u16 scope = telemetry.RegisterScope("export/scope");
  telemetry.RecordSample(scope, 500, 9);
  telemetry.RecordSample(scope, 700, 9);

  FlowSampler sampler(8);
  ObsEvent event;
  event.flow = 9;
  sampler.Ingest(event);

  const ObsReport report = CollectObsReport(telemetry, &sampler);
  ASSERT_EQ(report.scopes.size(), 1u);  // only scopes with samples appear
  EXPECT_EQ(report.scopes[0].name, "export/scope");
  EXPECT_EQ(report.scopes[0].samples, 2u);
  EXPECT_EQ(report.scopes[0].avg_ns, 600u);
  ASSERT_EQ(report.top_flows.size(), 1u);
  EXPECT_EQ(report.top_flows[0].flow, 9u);

  const std::string json = ObsReportJson(report);
  EXPECT_NE(json.find("\"compiled_in\""), std::string::npos);
  EXPECT_NE(json.find("\"export/scope\""), std::string::npos);
  EXPECT_NE(json.find("\"top_flows\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace obs
