// Tests for NitroSketch: unbiasedness of the sampled estimates, exactness at
// p = 1, the geometric skipping schedule of the eNetSTL variant, and the
// helper-call footprint of the eBPF variant.
#include "nf/nitro.h"

#include <gtest/gtest.h>

#include <memory>

#include "ebpf/helper.h"
#include "pktgen/flowgen.h"

namespace nf {
namespace {

enum class Kind { kEbpf, kKernel, kEnetstl };

std::unique_ptr<NitroBase> Make(Kind kind, const NitroConfig& config) {
  switch (kind) {
    case Kind::kEbpf:
      return std::make_unique<NitroEbpf>(config);
    case Kind::kKernel:
      return std::make_unique<NitroKernel>(config);
    case Kind::kEnetstl:
      return std::make_unique<NitroEnetstl>(config);
  }
  return nullptr;
}

class NitroAllVariants : public ::testing::TestWithParam<Kind> {
 protected:
  void SetUp() override {
    ebpf::SetCurrentCpu(0);
    ebpf::helpers::SeedPrandom(0x1234567890ull);
  }
};

TEST_P(NitroAllVariants, ProbabilityOneIsExactForLoneKey) {
  NitroConfig config;
  config.rows = 4;
  config.cols = 1024;
  config.update_prob = 1.0;
  auto sketch = Make(GetParam(), config);
  const char key[8] = "lonely";
  for (int i = 0; i < 100; ++i) {
    sketch->Update(key, 8);
  }
  EXPECT_EQ(sketch->Query(key, 8), 100u);
}

TEST_P(NitroAllVariants, SampledEstimateIsCloseForHeavyFlow) {
  NitroConfig config;
  config.rows = 8;
  config.cols = 4096;
  config.update_prob = 0.25;
  auto sketch = Make(GetParam(), config);
  const char heavy[8] = "elephnt";
  const u32 kTrue = 40000;
  for (u32 i = 0; i < kTrue; ++i) {
    sketch->Update(heavy, 8);
  }
  const u32 est = sketch->Query(heavy, 8);
  // Sampled estimator: generous 15% tolerance at this volume.
  EXPECT_GT(est, kTrue * 85 / 100);
  EXPECT_LT(est, kTrue * 115 / 100);
}

TEST_P(NitroAllVariants, ColdKeyEstimatesNearZero) {
  NitroConfig config;
  config.rows = 8;
  config.cols = 8192;
  config.update_prob = 0.5;
  auto sketch = Make(GetParam(), config);
  pktgen::Rng rng(12);
  for (int i = 0; i < 5000; ++i) {
    const u64 key = rng.NextBounded(100);
    sketch->Update(&key, 8);
  }
  const u64 cold = 0xdeadbeefcafeull;
  // Median-of-rows estimator keeps untouched keys near zero.
  EXPECT_LT(sketch->Query(&cold, 8), 50u);
}

INSTANTIATE_TEST_SUITE_P(Variants, NitroAllVariants,
                         ::testing::Values(Kind::kEbpf, Kind::kKernel,
                                           Kind::kEnetstl),
                         [](const auto& info) {
                           switch (info.param) {
                             case Kind::kEbpf:
                               return "eBPF";
                             case Kind::kKernel:
                               return "Kernel";
                             default:
                               return "eNetSTL";
                           }
                         });

// The eBPF variant must pay one prandom helper call per row per packet —
// that is precisely the cost the paper measures.
TEST(NitroEbpfSpecific, HelperCallsPerPacketEqualsRows) {
  NitroConfig config;
  config.rows = 8;
  NitroEbpf sketch(config);
  ebpf::GlobalHelperStats().Reset();
  const char key[4] = "pkt";
  sketch.Update(key, 4);
  EXPECT_EQ(ebpf::GlobalHelperStats().prandom_calls, 8u);
  sketch.Update(key, 4);
  EXPECT_EQ(ebpf::GlobalHelperStats().prandom_calls, 16u);
}

// The eNetSTL variant touches each row with probability p via geometric
// skipping: across many packets the per-row touch rate must converge to p.
TEST(NitroEnetstlSpecific, GeometricSkippingTouchRateMatchesP) {
  NitroConfig config;
  config.rows = 8;
  config.cols = 1024;
  config.update_prob = 0.125;
  NitroEnetstl sketch(config);
  ebpf::SetCurrentCpu(0);
  // A heavily updated key's estimate converges iff the per-row touch rate is
  // p (each touch contributes exactly 1/p).
  const char heavy[8] = "heavyyy";
  for (u32 i = 0; i < 80000; ++i) {
    sketch.Update(heavy, 8);
  }
  const u32 est = sketch.Query(heavy, 8);
  EXPECT_GT(est, 80000u * 80 / 100);
  EXPECT_LT(est, 80000u * 120 / 100);
}

TEST(NitroEnetstlSpecific, PoolRefillsAutomatically) {
  NitroConfig config;
  config.rows = 8;
  config.update_prob = 0.5;
  NitroEnetstl sketch(config);
  ebpf::SetCurrentCpu(0);
  // 4096-entry pool: tens of thousands of updates force several refills
  // without any exhaustion failure.
  for (int i = 0; i < 20000; ++i) {
    const u64 key = static_cast<u64>(i);
    sketch.Update(&key, 8);
  }
  SUCCEED();
}

TEST(NitroConfigTest, IncIsInverseProbability) {
  NitroConfig config;
  config.rows = 5;  // odd row count: the median is a single counter value
  config.update_prob = 0.125;
  NitroKernel sketch(config);
  const char key[4] = "one";
  // At p = 0.125 a single sampled touch adds 8.
  for (int i = 0; i < 200; ++i) {
    sketch.Update(key, 4);
  }
  const u32 est = sketch.Query(key, 4);
  EXPECT_EQ(est % 8, 0u);  // all contributions are multiples of 1/p
}

}  // namespace
}  // namespace nf
