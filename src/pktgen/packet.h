// Synthetic packet representation used by the traffic generator and the
// measurement pipeline. Packets are full 64-byte frames (the paper's traffic
// size) so NFs pay realistic parse costs.
#ifndef ENETSTL_PKTGEN_PACKET_H_
#define ENETSTL_PKTGEN_PACKET_H_

#include <vector>

#include "ebpf/program.h"
#include "ebpf/types.h"

namespace pktgen {

using ebpf::FiveTuple;
using ebpf::u16;
using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

struct Packet {
  alignas(8) u8 frame[ebpf::kFrameSize];

  static Packet FromTuple(const FiveTuple& tuple) {
    Packet p;
    ebpf::BuildFrame(tuple, p.frame);
    return p;
  }

  // Embeds an opaque 32-bit payload word right after the L4 ports (used by
  // workloads that carry an operation code or a value in the packet).
  void SetPayloadWord(u32 index, u32 value) {
    std::memcpy(frame + ebpf::kL4HeaderOffset + 8 + index * 4, &value, 4);
  }

  u32 PayloadWord(u32 index) const {
    u32 v;
    std::memcpy(&v, frame + ebpf::kL4HeaderOffset + 8 + index * 4, 4);
    return v;
  }
};

using Trace = std::vector<Packet>;

}  // namespace pktgen

#endif  // ENETSTL_PKTGEN_PACKET_H_
