#include "pktgen/pipeline.h"

#include <algorithm>
#include <chrono>

#include "ebpf/helper.h"
#include "obs/percentile.h"

namespace pktgen {

namespace {

using Clock = std::chrono::steady_clock;

inline ebpf::XdpContext MakeContext(Packet& packet, ebpf::u64 ts_ns) {
  ebpf::XdpContext ctx;
  ctx.data = packet.frame;
  ctx.data_end = packet.frame + ebpf::kFrameSize;
  ctx.rx_timestamp_ns = ts_ns;
  return ctx;
}

inline u32 ClampBurstSize(u32 burst_size) {
  return std::clamp(burst_size, u32{1}, kMaxBurstSize);
}

}  // namespace

ThroughputStats Pipeline::MeasureThroughput(PacketHandler handler,
                                            const Trace& trace) const {
  ThroughputStats stats;
  if (trace.empty()) {
    return stats;
  }
  ebpf::SetCurrentCpu(options_.cpu);
  // The trace is mutated in place (contexts expose writable frames, as XDP
  // does); copy so repeated measurements start from identical frames.
  Trace working = trace;
  const std::size_t n = working.size();

  std::size_t cursor = 0;
  for (u64 i = 0; i < options_.warmup_packets; ++i) {
    ebpf::XdpContext ctx = MakeContext(working[cursor], 0);
    (void)handler(ctx);
    cursor = cursor + 1 < n ? cursor + 1 : 0;
  }

  const auto start = Clock::now();
  for (u64 i = 0; i < options_.measure_packets; ++i) {
    ebpf::XdpContext ctx = MakeContext(working[cursor], 0);
    stats.AccumulateVerdict(handler(ctx));
    cursor = cursor + 1 < n ? cursor + 1 : 0;
  }
  const auto end = Clock::now();

  stats.packets = options_.measure_packets;
  stats.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  if (stats.seconds > 0.0) {
    stats.pps = static_cast<double>(stats.packets) / stats.seconds;
    stats.ns_per_packet = stats.seconds * 1e9 / static_cast<double>(stats.packets);
  }
  return stats;
}

ThroughputStats Pipeline::MeasureThroughputBurst(PacketBurstHandler handler,
                                                 const Trace& trace) const {
  ThroughputStats stats;
  if (trace.empty()) {
    return stats;
  }
  ebpf::SetCurrentCpu(options_.cpu);
  Trace working = trace;
  const std::size_t n = working.size();
  const u32 burst = ClampBurstSize(options_.burst_size);

  ebpf::XdpContext ctxs[kMaxBurstSize];
  ebpf::XdpAction verdicts[kMaxBurstSize];
  std::size_t cursor = 0;
  auto fill_burst = [&](u32 count) {
    for (u32 i = 0; i < count; ++i) {
      ctxs[i] = MakeContext(working[cursor], 0);
      cursor = cursor + 1 < n ? cursor + 1 : 0;
    }
  };

  for (u64 done = 0; done < options_.warmup_packets;) {
    const u32 count = static_cast<u32>(
        std::min<u64>(burst, options_.warmup_packets - done));
    fill_burst(count);
    handler(ctxs, count, verdicts);
    done += count;
  }

  const auto start = Clock::now();
  for (u64 done = 0; done < options_.measure_packets;) {
    const u32 count = static_cast<u32>(
        std::min<u64>(burst, options_.measure_packets - done));
    fill_burst(count);
    handler(ctxs, count, verdicts);
    for (u32 i = 0; i < count; ++i) {
      stats.AccumulateVerdict(verdicts[i]);
    }
    done += count;
  }
  const auto end = Clock::now();

  stats.packets = options_.measure_packets;
  stats.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(end - start)
          .count();
  if (stats.seconds > 0.0) {
    stats.pps = static_cast<double>(stats.packets) / stats.seconds;
    stats.ns_per_packet = stats.seconds * 1e9 / static_cast<double>(stats.packets);
  }
  return stats;
}

LatencyStats Pipeline::MeasureLatency(PacketHandler handler,
                                      const Trace& trace, u64 packets) const {
  LatencyStats stats;
  if (trace.empty() || packets == 0) {
    return stats;
  }
  ebpf::SetCurrentCpu(options_.cpu);
  Trace working = trace;
  const std::size_t n = working.size();

  std::vector<double> samples;
  samples.reserve(packets);
  std::size_t cursor = 0;
  double total = 0.0;
  for (u64 i = 0; i < packets; ++i) {
    const auto t0 = Clock::now();
    ebpf::XdpContext ctx = MakeContext(
        working[cursor],
        static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             t0.time_since_epoch())
                             .count()));
    (void)handler(ctx);
    const auto t1 = Clock::now();
    const double ns =
        std::chrono::duration_cast<std::chrono::duration<double, std::nano>>(
            t1 - t0)
            .count();
    samples.push_back(ns);
    total += ns;
    cursor = cursor + 1 < n ? cursor + 1 : 0;
  }

  std::sort(samples.begin(), samples.end());
  auto percentile = [&](double p) {
    return obs::SortedQuantile(samples.data(), samples.size(), p);
  };
  stats.packets = packets;
  stats.p50_ns = percentile(0.50);
  stats.p90_ns = percentile(0.90);
  stats.p99_ns = percentile(0.99);
  stats.mean_ns = total / static_cast<double>(packets);
  stats.max_ns = samples.back();
  return stats;
}

void ReplayOnce(PacketHandler handler, const Trace& trace) {
  Trace working = trace;
  for (Packet& packet : working) {
    ebpf::XdpContext ctx = MakeContext(packet, 0);
    (void)handler(ctx);
  }
}

}  // namespace pktgen
