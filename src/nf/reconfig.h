// Live-reconfiguration control plane over a running service chain.
//
// ChainReconfig wraps a loaded ChainExecutor and serializes its datapath
// (ProcessBurst) against control operations — NF hot swap, stage
// insertion/removal — with an epoch-guard mutex, so every control operation
// executes at a burst boundary (the chain's quiescent point: no packet is
// mid-walk, no fused program is mid-burst). Combined with the executor's
// build-aside-verify-then-commit edits and NF-pointer-bound stage programs
// (nf/chain.h), this yields the zero-loss guarantees DESIGN.md §10 states:
//
//  * no packet is dropped or re-run by a reconfiguration — a burst runs to
//    completion on the structure it started on, and the next burst runs on
//    the committed structure;
//  * no packet observes a half-edited chain — edits commit a complete
//    program set through the prog array at the quiescent point;
//  * a failed operation (verification, typed construction error, injected
//    commit or state-transfer fault) rolls back with the chain bit-identical
//    to its pre-call state — including a live fused program.
//
// Hot swap replaces one stage with a replacement NF built through the
// registry (SwapNf) or supplied directly (SwapNfWith). The replacement is
// warmed before commit:
//  * state transfer — if the family supports ExportState/ImportState, the
//    old instance's state blob is imported into the replacement under the
//    "reconfig.state_transfer" fault point (injected allocation failure
//    aborts the swap, chain untouched);
//  * dual-write shadowing — otherwise the swap is staged and the next
//    `warmup_bursts` input bursts are also fed to the replacement (verdicts
//    discarded, state warms against the offered load; a conservative
//    superset of what the stage itself would see), then the swap commits at
//    the burst boundary where the warm-up completes.
// The commit itself is the executor's prog-array slot update, guarded by the
// "reconfig.swap_commit" fault point; a commit fault surfaces as a typed
// rollback, not an abort.
#ifndef ENETSTL_NF_RECONFIG_H_
#define ENETSTL_NF_RECONFIG_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/epoch_guard.h"
#include "nf/chain.h"
#include "nf/nf_registry.h"

namespace nf {

// Typed reconfiguration failure taxonomy. Every failure is an expected
// control-plane outcome with the chain left bit-identical; none abort.
enum class ReconfigError {
  kOk = 0,
  kUnknownNf,            // SwapNf name not in the registry
  kUnsupportedVariant,   // registry entry lacks the requested variant
  kBadStage,             // no stage with that name / position out of range
  kBudgetExceeded,       // edit would break the tail-call budget (<= 33)
  kVerifyFailed,         // replacement program failed verification
  kCommitFault,          // prog-array/commit rejected (injected -ENOMEM)
  kStateTransferFailed,  // export/import failed or faulted
  kEditPending,          // a staged swap is still warming up
};

std::string_view ReconfigErrorName(ReconfigError error);

struct ReconfigResult {
  ReconfigError error = ReconfigError::kOk;
  std::string message;  // empty on success
  bool ok() const { return error == ReconfigError::kOk; }
};

struct SwapOptions {
  // Dual-write warm-up length (bursts) when the family does not support
  // state transfer; 0 commits at the next burst boundary unwarmed.
  u32 warmup_bursts = 8;
  // Attempt ExportState/ImportState first; disable to force shadowing.
  bool transfer_state = true;
};

struct ReconfigStats {
  u64 swaps_committed = 0;
  u64 swaps_rolled_back = 0;  // typed failures after a swap was requested
  u64 inserts = 0;
  u64 removes = 0;
  u64 state_bytes = 0;      // blob bytes moved by state transfer
  u64 shadow_bursts = 0;    // dual-write warm-up bursts executed
  u64 shadow_packets = 0;
  u64 epoch = 0;            // committed control operations
  u64 last_swap_ns = 0;     // request-to-commit latency of the last swap
};

// kControl obs-event codes emitted on the "<chain>/reconfig" scope
// (continuing the fused-chain code space: 1 = promote, 2 = demote).
inline constexpr u32 kReconfigSwapBeginCode = 3;
inline constexpr u32 kReconfigSwapCommitCode = 4;
inline constexpr u32 kReconfigSwapRollbackCode = 5;
inline constexpr u32 kReconfigInsertCode = 6;
inline constexpr u32 kReconfigRemoveCode = 7;
inline constexpr u32 kReconfigShadowDrainCode = 8;

// Counting pass-through stage: forwards every packet unchanged. The
// verdict-transparent edit payload — inserting or removing one cannot change
// any chain verdict, which is exactly what the chaos harness asserts — and a
// packet tap (its counter observes the traffic crossing its position).
class PassthroughTap : public NetworkFunction {
 public:
  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override {
    (void)ctx;
    ++packets_;
    return ebpf::XdpAction::kPass;
  }
  std::string_view name() const override { return "tap"; }
  Variant variant() const override { return Variant::kKernel; }
  u64 packets() const { return packets_; }

 private:
  u64 packets_ = 0;
};

class ChainReconfig {
 public:
  // The chain must already be Load()ed and must outlive the plane.
  explicit ChainReconfig(ChainExecutor& chain);

  ChainReconfig(const ChainReconfig&) = delete;
  ChainReconfig& operator=(const ChainReconfig&) = delete;

  // Datapath entry point. Holds the epoch guard for the whole burst, drives
  // any staged swap's dual-write warm-up after the chain runs, and commits
  // the swap at the boundary where its warm-up completes. Concurrent control
  // calls serialize against this — they run between bursts, never during.
  void ProcessBurst(ebpf::XdpContext* ctxs, u32 count,
                    ebpf::XdpAction* verdicts);

  // Hot-swaps the (unique) stage whose name() equals `name` with a fresh
  // registry-built instance of the requested variant. Construction failures
  // come back with the registry's typed taxonomy and the bench --nf=
  // wording.
  ReconfigResult SwapNf(std::string_view name, Variant variant,
                        const SwapOptions& options = SwapOptions{});
  // Same, with a caller-supplied replacement (e.g. a KatranLb built for a
  // new backend set — apps::SwapLbBackends).
  ReconfigResult SwapNfWith(std::string_view name,
                            std::unique_ptr<NetworkFunction> replacement,
                            const SwapOptions& options = SwapOptions{});

  // Structural chain edits at the next quiescent point. Position and
  // tail-call budget are validated before anything is built.
  ReconfigResult InsertStage(u32 pos, std::unique_ptr<NetworkFunction> stage);
  ReconfigResult RemoveStage(u32 pos);

  // True while a staged swap is still shadow-warming (further swaps return
  // kEditPending until it commits).
  bool swap_pending() const;

  ReconfigStats stats() const;
  ChainExecutor& chain() { return chain_; }

 private:
  struct PendingSwap {
    u32 index = 0;
    std::unique_ptr<NetworkFunction> replacement;
    u32 remaining_bursts = 0;
    u64 begin_ns = 0;
  };

  // Finds the stage index by NF name; depth() if absent.
  u32 FindStage(std::string_view name) const;
  // Stages or commits `replacement` into stage `index`; guard held.
  ReconfigResult StageOrCommitLocked(u32 index,
                                     std::unique_ptr<NetworkFunction> repl,
                                     const SwapOptions& options, u64 begin_ns);
  // Commits a built-and-warmed replacement; guard held.
  ReconfigResult CommitSwapLocked(u32 index,
                                  std::unique_ptr<NetworkFunction> repl,
                                  u64 begin_ns);
  void RecordControlLocked(u32 code, u64 value);

  ChainExecutor& chain_;
  // Quiescence guard (core/epoch_guard.h): held across every datapath burst
  // and every control operation, so control mutations only ever interleave
  // at burst boundaries (the quiescent points). Its epoch counts committed
  // control operations and surfaces as ReconfigStats::epoch.
  mutable enetstl::EpochGuard guard_;
  ReconfigStats stats_;
  std::unique_ptr<PendingSwap> pending_;
  // Control scope "<chain>/reconfig" for kControl events.
  u16 reconfig_scope_;
};

}  // namespace nf

#endif  // ENETSTL_NF_RECONFIG_H_
