// Extension benches (not a paper figure): the two NFs built beyond the
// paper's evaluation set.
//  * d-ary cuckoo key-value query (Fotakis [27], Table 1's key-value
//    category) — exercises the fused "comparing after hashing" kfunc.
//  * LRU flow cache — the §4.5 flexibility claim; compared against the
//    kernel-provided BPF LRU map, which is what an eBPF program must use
//    today because it cannot build its own list-based LRU (P1).
#include <memory>

#include "bench/bench_util.h"
#include "ebpf/maps.h"
#include "nf/dary_cuckoo.h"
#include "nf/lru_cache.h"

namespace {

using bench::u32;
using bench::u64;

void RunDaryCuckoo() {
  bench::PrintHeader(
      "Extension: d-ary cuckoo key-value query, d = 8, load 0.75");
  nf::DaryCuckooConfig config;
  config.num_slots = 8192;
  config.d = 8;
  const auto flows = pktgen::MakeFlowPopulation(config.num_slots * 2, 61);

  nf::DaryCuckooEbpf e(config);
  nf::DaryCuckooKernel k(config);
  nf::DaryCuckooEnetstl s(config);
  std::vector<ebpf::FiveTuple> resident;
  const u32 target = config.num_slots * 3 / 4;
  for (const auto& flow : flows) {
    if (resident.size() >= target) {
      break;
    }
    if (e.Insert(flow, 1) && k.Insert(flow, 1) && s.Insert(flow, 1)) {
      resident.push_back(flow);
    }
  }
  // Two workloads: lookups that hit (the scalar probe early-exits at the
  // matching row, blunting the fused call's advantage) and lookups that
  // miss (every probe inspects all d rows — the fused hash dominates).
  const auto hit_trace = pktgen::MakeUniformTrace(resident, 8192, 62);
  const std::vector<ebpf::FiveTuple> absent(flows.end() - 4096, flows.end());
  const auto miss_trace = pktgen::MakeUniformTrace(absent, 8192, 63);

  bench::PrintSweepHeader("workload");
  bench::SweepAccumulator acc;
  for (const auto& [name, trace] :
       {std::pair<const char*, const pktgen::Trace&>{"hit-heavy", hit_trace},
        {"miss-heavy", miss_trace}}) {
    const double em = bench::MeasureMpps(e.Handler(), trace);
    const double km = bench::MeasureMpps(k.Handler(), trace);
    const double sm = bench::MeasureMpps(s.Handler(), trace);
    bench::PrintSweepRow(name, em, km, sm);
    acc.Add(em, km, sm);
  }
  acc.PrintSummary("d-ary cuckoo (extension; no paper reference)");
  std::printf(
      "-- fused interfaces cannot early-exit: scalar probes win back ground "
      "on hit-heavy traffic, fused multi-hash wins on miss-heavy traffic\n");
}

void RunLruCache() {
  bench::PrintHeader(
      "Extension: list-based LRU flow cache (memory wrapper) vs BPF LRU map");
  const auto flows = pktgen::MakeFlowPopulation(4096, 63);
  const auto trace = pktgen::MakeZipfTrace(flows, 16384, 1.1, 64);
  constexpr u32 kCapacity = 1024;

  // Baseline: what an eBPF program uses today — the kernel's LRU map.
  ebpf::LruHashMap<ebpf::FiveTuple, u64> lru_map(kCapacity);
  auto map_handler = [&](ebpf::XdpContext& ctx) {
    ebpf::FiveTuple t;
    if (!ebpf::ParseFiveTuple(ctx, &t)) {
      return ebpf::XdpAction::kAborted;
    }
    if (lru_map.LookupElem(t) != nullptr) {
      return ebpf::XdpAction::kTx;
    }
    lru_map.UpdateElem(t, t.src_ip);
    return ebpf::XdpAction::kPass;
  };

  nf::LruCacheKernel kernel(kCapacity);
  nf::LruCacheEnetstl enetstl(kCapacity);

  const double map_mpps = bench::MeasureMpps(map_handler, trace);
  const double kernel_mpps = bench::MeasureMpps(kernel.Handler(), trace);
  const double enetstl_mpps = bench::MeasureMpps(enetstl.Handler(), trace);
  std::printf("%-22s %12s\n", "implementation", "Mpps");
  std::printf("%-22s %12.3f\n", "BPF LRU map", map_mpps);
  std::printf("%-22s %12.3f\n", "kernel list LRU", kernel_mpps);
  std::printf("%-22s %12.3f\n", "eNetSTL list LRU", enetstl_mpps);
  std::printf(
      "-- the point is capability, not speed: before the memory wrapper, the "
      "map was the ONLY option\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  RunDaryCuckoo();
  RunLruCache();
  return 0;
}
