#include "nf/vbf.h"

#include "core/hash.h"
#include "core/multihash_inl.h"
#include "core/post_hash.h"

namespace nf {

// ---------------------------------------------------------------------------
// VbfEbpf: scalar hash per row.
// ---------------------------------------------------------------------------

VbfEbpf::VbfEbpf(const VbfConfig& config)
    : VbfBase(config), table_map_(1, config.positions * sizeof(u32)) {}

void VbfEbpf::AddToSet(const void* key, std::size_t len, u32 set_id) {
  auto* table = static_cast<u32*>(table_map_.LookupElem(0));
  if (table == nullptr || set_id >= config_.num_sets) {
    return;
  }
  for (u32 r = 0; r < config_.rows; ++r) {
    const u32 h = enetstl::XxHash32Bpf(key, len, enetstl::LaneSeed(config_.seed, r));
    table[h & pos_mask_] |= 1u << set_id;
  }
}

u32 VbfEbpf::LookupSets(const void* key, std::size_t len) {
  auto* table = static_cast<u32*>(table_map_.LookupElem(0));
  if (table == nullptr) {
    return 0;
  }
  u32 result = 0xffffffffu;
  for (u32 r = 0; r < config_.rows; ++r) {
    const u32 h = enetstl::XxHash32Bpf(key, len, enetstl::LaneSeed(config_.seed, r));
    result &= table[h & pos_mask_];
  }
  return result;
}

// ---------------------------------------------------------------------------
// VbfKernel: inline fused multi-hash.
// ---------------------------------------------------------------------------

VbfKernel::VbfKernel(const VbfConfig& config)
    : VbfBase(config), table_(config.positions, 0) {}

void VbfKernel::AddToSet(const void* key, std::size_t len, u32 set_id) {
  if (set_id >= config_.num_sets) {
    return;
  }
  alignas(32) u32 h[8];
  enetstl::internal::MultiHashImpl(key, len, config_.seed, config_.rows, h);
  for (u32 r = 0; r < config_.rows; ++r) {
    table_[h[r] & pos_mask_] |= 1u << set_id;
  }
}

u32 VbfKernel::LookupSets(const void* key, std::size_t len) {
  alignas(32) u32 h[8];
  enetstl::internal::MultiHashImpl(key, len, config_.seed, config_.rows, h);
  u32 result = 0xffffffffu;
  for (u32 r = 0; r < config_.rows; ++r) {
    result &= table_[h[r] & pos_mask_];
  }
  return result;
}

// ---------------------------------------------------------------------------
// VbfEnetstl: one fused kfunc per operation.
// ---------------------------------------------------------------------------

VbfEnetstl::VbfEnetstl(const VbfConfig& config)
    : VbfBase(config), table_map_(1, config.positions * sizeof(u32)) {}

void VbfEnetstl::AddToSet(const void* key, std::size_t len, u32 set_id) {
  auto* table = static_cast<u32*>(table_map_.LookupElem(0));
  if (table == nullptr || set_id >= config_.num_sets) {
    return;
  }
  enetstl::HashMaskOr(table, config_.rows, pos_mask_, key, len, config_.seed,
                      1u << set_id);
}

u32 VbfEnetstl::LookupSets(const void* key, std::size_t len) {
  auto* table = static_cast<u32*>(table_map_.LookupElem(0));
  if (table == nullptr) {
    return 0;
  }
  return enetstl::HashMaskAnd(table, config_.rows, pos_mask_, key, len,
                              config_.seed);
}

}  // namespace nf
