#include "obs/slo.h"

#include <cstdio>

namespace obs {

SloQuantiles SummarizeHist(const LatencyHist& hist) {
  SloQuantiles q;
  q.samples = hist.samples;
  q.p50_ns = HistQuantileInterpolatedNs(hist, 0.50);
  q.p99_ns = HistQuantileInterpolatedNs(hist, 0.99);
  q.p999_ns = HistQuantileInterpolatedNs(hist, 0.999);
  return q;
}

double LocateKnee(SloScenario* scenario) {
  scenario->knee_load = 0.0;
  for (const SloPoint& p : scenario->points) {
    const bool latency_violated = scenario->budget.p99_budget_ns > 0.0 &&
                                  p.sojourn.p99_ns >
                                      scenario->budget.p99_budget_ns;
    const bool drop_violated = p.drop_fraction > scenario->budget.drop_budget;
    if (latency_violated || drop_violated) {
      scenario->knee_load = p.load_multiple;
      break;
    }
  }
  return scenario->knee_load;
}

std::string SloReportJson(const std::vector<SloScenario>& scenarios) {
  std::string out = "{\"scenarios\": [";
  char buf[320];
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const SloScenario& sc = scenarios[s];
    out += s == 0 ? "" : ", ";
    // Scenario names are library-chosen identifiers (no escaping needed, and
    // keeping this file free of an escaper avoids a third private copy; the
    // bench report's own string fields go through bench::JsonEscape).
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"%s\", \"capacity_mpps\": %.6f, "
                  "\"knee_load\": %.3f, \"p99_budget_ns\": %.1f, "
                  "\"drop_budget\": %.6f, \"points\": [",
                  sc.name.c_str(), sc.capacity_mpps, sc.knee_load,
                  sc.budget.p99_budget_ns, sc.budget.drop_budget);
    out += buf;
    for (std::size_t i = 0; i < sc.points.size(); ++i) {
      const SloPoint& p = sc.points[i];
      out += i == 0 ? "" : ", ";
      std::snprintf(
          buf, sizeof(buf),
          "{\"load\": %.3f, \"offered_mpps\": %.6f, \"achieved_mpps\": %.6f, "
          "\"drop_fraction\": %.6f, \"max_queue_depth\": %llu, "
          "\"p50_us\": %.3f, \"p99_us\": %.3f, \"p999_us\": %.3f, "
          "\"service_p99_us\": %.3f}",
          p.load_multiple, p.offered_mpps, p.achieved_mpps, p.drop_fraction,
          static_cast<unsigned long long>(p.max_queue_depth),
          p.sojourn.p50_ns / 1e3, p.sojourn.p99_ns / 1e3,
          p.sojourn.p999_ns / 1e3, p.service.p99_ns / 1e3);
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
