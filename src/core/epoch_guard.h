// Quiescence primitives shared by the control planes.
//
// Two planes in the codebase need "commit only at a burst boundary":
//
//  * nf/reconfig serializes chain mutations against the datapath with a
//    mutex held across every burst AND every control operation, so a control
//    op can only ever run between bursts (the chain's quiescent points).
//    That mutex-plus-committed-epoch pair is EpochGuard.
//  * the scale-out pipeline re-steers RSS indirection slots while workers
//    keep running. Workers must not take a lock per burst there — the whole
//    point is independent shards — so steering commits are published through
//    a lock-free monotonically increasing generation counter (SteeringEpoch)
//    that workers poll once per burst boundary and act on cooperatively.
//
// Both encode the same contract: a mutation becomes visible only at a
// boundary the datapath chose to observe it, never mid-burst.
#ifndef ENETSTL_CORE_EPOCH_GUARD_H_
#define ENETSTL_CORE_EPOCH_GUARD_H_

#include <atomic>
#include <mutex>

#include "ebpf/types.h"

namespace enetstl {

using ebpf::u64;

// Mutex-based quiescence guard: the datapath holds the guard for the length
// of each burst, control operations hold it for the length of the mutation,
// so mutations interleave only at burst boundaries. `epoch()` counts
// committed control operations (advanced by the control side while holding
// the guard).
class EpochGuard {
 public:
  EpochGuard() = default;
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  // Datapath side: held across one burst.
  std::unique_lock<std::mutex> LockBurst() {
    return std::unique_lock<std::mutex>(mu_);
  }
  // Control side: held across one control operation. Same mutex — the two
  // names document which role the caller plays.
  std::unique_lock<std::mutex> LockControl() {
    return std::unique_lock<std::mutex>(mu_);
  }

  // Marks one committed control operation. Caller holds the guard.
  void AdvanceEpoch() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  u64 epoch() const { return epoch_.load(std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  std::atomic<u64> epoch_{0};
};

// Lock-free generation counter for published-state commits (e.g. a live RSS
// indirection table). The publisher bumps the generation with release order
// after its stores; a subscriber that observes the new generation (acquire)
// at its next burst boundary is guaranteed to see the published stores.
class SteeringEpoch {
 public:
  SteeringEpoch() = default;
  SteeringEpoch(const SteeringEpoch&) = delete;
  SteeringEpoch& operator=(const SteeringEpoch&) = delete;

  // Publisher: call after the stores the new generation covers.
  void Publish() { gen_.fetch_add(1, std::memory_order_release); }

  // Subscriber: current generation; pairs with Publish via acquire.
  u64 Read() const { return gen_.load(std::memory_order_acquire); }

  // Subscriber convenience: true (and updates `last_seen`) when the
  // generation moved since `last_seen`.
  bool Changed(u64& last_seen) const {
    const u64 now = Read();
    if (now == last_seen) {
      return false;
    }
    last_seen = now;
    return true;
  }

 private:
  std::atomic<u64> gen_{0};
};

}  // namespace enetstl

#endif  // ENETSTL_CORE_EPOCH_GUARD_H_
