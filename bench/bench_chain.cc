// Service-chain sweep: ChainExecutor throughput versus chain length (1..8
// stages) for all three variants, the fused (hot-chain specialized) eNetSTL
// path, plus the RSS-sharded chain deployment.
//
// Stages alternate the two membership NFs (cuckoo-filter, vbf-membership)
// and the trace draws uniformly from flows resident in both, so nearly every
// packet is PASS at every stage and traverses the whole chain — the sweep
// measures the cost of chain depth (tail-call walk, per-stage verdict
// partition/regroup), not early-exit shortcuts. `--stages=a,b,c` benches an
// arbitrary registry-named chain instead of the default alternating sweep.
//
// Before measuring, every (length, variant) point re-checks the chain
// invariant on live traffic: burst-path verdicts — generic AND fused — must
// be bit-identical to per-packet scalar traversal. A mismatch exits
// non-zero.
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "nf/chain.h"
#include "pktgen/sharded_pipeline.h"

namespace {

using bench::u32;
using bench::u64;

// Stage roster for a chain of the given depth: membership NFs, alternating.
std::vector<std::string> ChainStages(u32 length) {
  static const char* kCycle[] = {"cuckoo-filter", "vbf-membership"};
  std::vector<std::string> names;
  for (u32 i = 0; i < length; ++i) {
    names.push_back(kCycle[i % 2]);
  }
  return names;
}

// Strips `--stages=a,b,c` from argv (the HandleRegistryArgs convention) and
// validates every name against the registry. Returns an exit code >= 0 when
// the process should terminate (unknown/unchainable stage), -1 to continue.
int HandleStagesArg(int* argc, char** argv, std::vector<std::string>* stages) {
  int out = 1;
  int code = -1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strncmp(argv[i], "--stages=", 9) != 0) {
      argv[out++] = argv[i];
      continue;
    }
    stages->clear();
    std::string list = argv[i] + 9;
    std::size_t pos = 0;
    while (pos <= list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string name =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      if (!name.empty()) {
        stages->push_back(name);
      }
      if (comma == std::string::npos) {
        break;
      }
      pos = comma + 1;
    }
    if (stages->empty()) {
      std::fprintf(stderr, "--stages= needs a comma-separated NF list\n");
      code = 1;
      continue;
    }
    for (const std::string& name : *stages) {
      const nf::NfEntry* entry = nf::NfRegistry::Global().Lookup(name);
      if (entry == nullptr || !entry->caps.chainable) {
        std::fprintf(stderr,
                     "unknown or unchainable stage '%s'; registered NFs:\n",
                     name.c_str());
        bench::PrintRegistryList(stderr);
        code = 1;
        break;
      }
    }
  }
  *argc = out;
  return code;
}

// True when every stage supports `variant` (apps have no kernel-native
// build, so custom chains may cover only a subset of the sweep columns).
bool ChainSupports(const std::vector<std::string>& stages,
                   nf::Variant variant) {
  for (const std::string& name : stages) {
    const nf::NfEntry* entry = nf::NfRegistry::Global().Lookup(name);
    if (entry == nullptr || !entry->Supports(variant)) {
      return false;
    }
  }
  return true;
}

// Uniform trace over flows resident in every stage's primed set (the vbf
// recipe primes the first 2048 flows, cuckoo-filter a superset), so chains
// stay on the all-PASS path.
pktgen::Trace MakeChainTrace(const nf::BenchEnv& env) {
  const std::vector<ebpf::FiveTuple> resident(env.flows.begin(),
                                              env.flows.begin() + 2048);
  return pktgen::MakeUniformTrace(resident, 16384, 79);
}

// Scalar-vs-burst equivalence on deterministic twin chains; returns false
// (and reports) on any verdict mismatch. With `fused` the burst twin runs
// the promoted single-pass executor, so the check pins fused verdicts to
// the scalar tail-call oracle.
bool CheckChainInvariant(const std::vector<std::string>& stages,
                         nf::Variant variant, const nf::BenchEnv& env,
                         const pktgen::Trace& trace, bool fused = false) {
  auto scalar_chain = nf::MakeBenchChain(stages, variant, env, "chain");
  auto burst_chain = nf::MakeBenchChain(stages, variant, env, "chain");
  if (!scalar_chain || !burst_chain) {
    std::fprintf(stderr, "chain construction failed (depth %zu, %s)\n",
                 stages.size(), std::string(nf::VariantName(variant)).c_str());
    return false;
  }
  if (fused) {
    burst_chain->EnableFusion();
    if (!burst_chain->TryPromoteNow()) {
      std::fprintf(stderr, "fused promotion failed (depth %zu)\n",
                   stages.size());
      return false;
    }
  }
  constexpr u32 kPackets = 4096;
  constexpr u32 kBurst = 32;
  for (u32 base = 0; base + kBurst <= kPackets; base += kBurst) {
    ebpf::XdpAction scalar_verdicts[kBurst];
    ebpf::XdpAction burst_verdicts[kBurst];
    ebpf::XdpContext ctxs[kBurst];
    pktgen::Packet copies[kBurst];
    for (u32 i = 0; i < kBurst; ++i) {
      copies[i] = trace[(base + i) % trace.size()];
      ebpf::XdpContext ctx{copies[i].frame, copies[i].frame + ebpf::kFrameSize,
                           0};
      scalar_verdicts[i] = scalar_chain->Process(ctx);
      ctxs[i] = ebpf::XdpContext{copies[i].frame,
                                 copies[i].frame + ebpf::kFrameSize, 0};
    }
    burst_chain->ProcessBurst(ctxs, kBurst, burst_verdicts);
    for (u32 i = 0; i < kBurst; ++i) {
      if (scalar_verdicts[i] != burst_verdicts[i]) {
        std::fprintf(stderr,
                     "chain invariant violated: depth %zu %s packet %u "
                     "scalar=%d burst=%d\n",
                     stages.size(),
                     std::string(nf::VariantName(variant)).c_str(), base + i,
                     static_cast<int>(scalar_verdicts[i]),
                     static_cast<int>(burst_verdicts[i]));
        return false;
      }
    }
  }
  return true;
}

void PrintStageBreakdown(const nf::ChainExecutor& chain) {
  for (const nf::ChainStageStats& s : chain.stage_stats()) {
    const double share =
        s.in > 0 ? static_cast<double>(s.ns) / static_cast<double>(s.in) : 0.0;
    std::printf(
        "     stage %-16s in=%-10llu pass=%-10llu drop=%-8llu tx=%-8llu "
        "ns/pkt=%.1f\n",
        s.name.c_str(), static_cast<unsigned long long>(s.in),
        static_cast<unsigned long long>(s.pass),
        static_cast<unsigned long long>(s.drop),
        static_cast<unsigned long long>(s.tx), share);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (const int code = bench::HandleRegistryArgs(&argc, argv); code >= 0) {
    return code;
  }
  std::vector<std::string> custom_stages;
  if (const int code = HandleStagesArg(&argc, argv, &custom_stages);
      code >= 0) {
    return code;
  }
  bench::JsonReport report("chain", argc, argv);
  bench::PrintHeader(
      "Service chains: throughput vs chain length (tail-call model)");

  const nf::BenchEnv env = nf::MakeDefaultBenchEnv();
  const pktgen::Trace trace = MakeChainTrace(env);
  const nf::Variant kVariants[] = {nf::Variant::kEbpf, nf::Variant::kKernel,
                                   nf::Variant::kEnetstl};

  // Sweep points: the default depth-1..8 alternating roster, or the one
  // chain named on the command line.
  std::vector<std::pair<std::string, std::vector<std::string>>> points;
  if (custom_stages.empty()) {
    for (u32 length = 1; length <= 8; ++length) {
      points.emplace_back(std::to_string(length), ChainStages(length));
    }
  } else {
    std::string label = custom_stages[0];
    for (std::size_t i = 1; i < custom_stages.size(); ++i) {
      label += "," + custom_stages[i];
    }
    std::printf("-- custom chain: %s\n", label.c_str());
    points.emplace_back("custom", custom_stages);
  }

  bench::PrintSweepHeader("chain_depth");
  bench::SweepAccumulator acc;
  for (const auto& [param, stages] : points) {
    double mpps[3] = {0, 0, 0};
    for (int v = 0; v < 3; ++v) {
      if (!ChainSupports(stages, kVariants[v])) {
        std::printf("   (skipping %s: unsupported by a stage)\n",
                    std::string(nf::VariantName(kVariants[v])).c_str());
        continue;
      }
      if (!CheckChainInvariant(stages, kVariants[v], env, trace)) {
        return 1;
      }
      auto chain = nf::MakeBenchChain(stages, kVariants[v], env, "chain");
      if (!chain) {
        std::fprintf(stderr, "chain construction failed (%s)\n",
                     param.c_str());
        return 1;
      }
      mpps[v] = bench::MeasureBurstMpps(*chain, trace, 32);
      report.Add(std::string(nf::VariantName(kVariants[v])), param, mpps[v]);
    }
    bench::PrintSweepRow(param, mpps[0], mpps[1], mpps[2]);
    acc.Add(mpps[0], mpps[1], mpps[2]);

    // Fused (hot-chain specialized) eNetSTL path: invariant-checked against
    // the scalar oracle, then measured with obs-driven promotion — fusion is
    // armed and the chain promotes itself during warmup traffic.
    if (!ChainSupports(stages, nf::Variant::kEnetstl)) {
      continue;
    }
    if (!CheckChainInvariant(stages, nf::Variant::kEnetstl, env, trace,
                             /*fused=*/true)) {
      return 1;
    }
    auto fchain =
        nf::MakeBenchChain(stages, nf::Variant::kEnetstl, env, "chain");
    if (!fchain) {
      std::fprintf(stderr, "chain construction failed (%s)\n", param.c_str());
      return 1;
    }
    fchain->EnableFusion();
    const double fused_mpps = bench::MeasureBurstMpps(*fchain, trace, 32);
    if (!fchain->fused()) {
      std::fprintf(stderr,
                   "chain %s never promoted to the fused path under load\n",
                   param.c_str());
      return 1;
    }
    report.Add("eNetSTL-fused", param, fused_mpps);
    std::printf("%-14s %12s %12s %12.3f %+14.1f (fused vs generic eNetSTL)\n",
                (param + " fused").c_str(), "-", "-", fused_mpps,
                bench::PercentGain(fused_mpps, mpps[2]));
  }
  acc.PrintSummary("chain sweep");

  // Per-stage breakdown of the deepest eNetSTL chain over one measured pass.
  if (custom_stages.empty()) {
    auto chain =
        nf::MakeBenchChain(ChainStages(4), nf::Variant::kEnetstl, env, "chain");
    pktgen::Pipeline::Options opts;
    opts.warmup_packets = 0;
    opts.measure_packets = bench::EnvPackets(100'000);
    opts.burst_size = 32;
    const pktgen::Pipeline pipeline(opts);
    chain->ResetStageStats();
    pipeline.MeasureThroughputBurst(chain->BurstHandler(), trace);
    std::printf("-- per-stage breakdown (depth 4, eNetSTL):\n");
    PrintStageBreakdown(*chain);
  }

  // RSS-sharded deployment: every shard runs its own replica of the depth-4
  // eNetSTL chain (flow-disjoint state, the multi-core model of PR 1).
  if (custom_stages.empty()) {
    pktgen::ShardedPipeline::Options opts;
    opts.num_workers = 4;
    opts.burst_size = 32;
    opts.warmup_packets = 5'000;
    opts.measure_packets = bench::EnvPackets(200'000);
    const pktgen::ShardedPipeline sharded(opts);
    const auto result = sharded.MeasureThroughput(
        nf::ShardedChainFactory([&env](u32) {
          return std::shared_ptr<nf::ChainExecutor>(
              nf::MakeBenchChain(ChainStages(4), nf::Variant::kEnetstl, env,
                                 "chain"));
        }),
        trace);
    std::printf("-- sharded chain (4 workers, depth 4, eNetSTL): %.3f Mpps "
                "aggregate\n",
                result.total.pps / 1e6);
    for (const auto& shard : result.shards) {
      std::printf("   shard cpu%u: %.3f Mpps over %llu packets, %zu stages\n",
                  shard.cpu, shard.stats.pps / 1e6,
                  static_cast<unsigned long long>(shard.stats.packets),
                  shard.stages.size());
    }
    report.Add("enetstl-sharded", "4x4", result.total.pps / 1e6);
  }

  std::printf(
      "-- expectation: throughput decays ~1/depth; burst path verdicts "
      "bit-identical to scalar traversal at every depth\n");
  return 0;
}
