// Parameterized property sweeps across structure shapes: the invariants the
// individual test files pin down for one configuration must hold across the
// whole configuration space the NFs use.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/bits.h"
#include "core/list_buckets.h"
#include "core/post_hash.h"
#include "ebpf/maps.h"
#include "nf/cms.h"
#include "nf/cuckoo_filter.h"
#include "pktgen/flowgen.h"

namespace {

using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

// --- ListBuckets across element sizes ---------------------------------------

class ListBucketsElemSize : public ::testing::TestWithParam<u32> {};

TEST_P(ListBucketsElemSize, FifoAcrossPayloadSizes) {
  const u32 elem_size = GetParam();
  ebpf::SetCurrentCpu(0);
  enetstl::ListBuckets lb(8, 128, elem_size);
  std::vector<std::deque<std::vector<u8>>> model(8);
  pktgen::Rng rng(100 + elem_size);
  for (int step = 0; step < 3000; ++step) {
    const u32 bucket = static_cast<u32>(rng.NextBounded(8));
    if (rng.NextBounded(2) == 0) {
      std::vector<u8> payload(elem_size);
      for (auto& b : payload) {
        b = static_cast<u8>(rng.NextU32());
      }
      if (lb.InsertTail(bucket, payload.data(), elem_size) == ebpf::kOk) {
        model[bucket].push_back(payload);
      }
    } else {
      std::vector<u8> out(elem_size);
      const int rc = lb.PopFront(bucket, out.data(), elem_size);
      if (model[bucket].empty()) {
        ASSERT_EQ(rc, ebpf::kErrNoEnt);
      } else {
        ASSERT_EQ(rc, ebpf::kOk);
        ASSERT_EQ(out, model[bucket].front());
        model[bucket].pop_front();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ElemSizes, ListBucketsElemSize,
                         ::testing::Values(4u, 8u, 12u, 16u, 32u, 64u, 100u));

// --- Count-min across column counts ------------------------------------------

class CmsColumns : public ::testing::TestWithParam<u32> {};

TEST_P(CmsColumns, NeverUnderestimatesAtAnyWidth) {
  const u32 cols = GetParam();
  ebpf::SetCurrentCpu(0);
  nf::CmsConfig config;
  config.rows = 4;
  config.cols = cols;
  nf::CmsEnetstl cms(config);
  std::unordered_map<u64, u32> truth;
  pktgen::Rng rng(200 + cols);
  for (int i = 0; i < 2000; ++i) {
    const u64 key = rng.NextBounded(150);
    cms.Update(&key, 8, 1);
    ++truth[key];
  }
  for (const auto& [key, count] : truth) {
    ASSERT_GE(cms.Query(&key, 8), count) << "cols=" << cols;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CmsColumns,
                         ::testing::Values(64u, 128u, 512u, 2048u, 16384u));

// --- Cuckoo filter across table sizes ----------------------------------------

class FilterBuckets : public ::testing::TestWithParam<u32> {};

TEST_P(FilterBuckets, NoFalseNegativesAtAnySize) {
  const u32 buckets = GetParam();
  nf::CuckooFilterConfig config;
  config.num_buckets = buckets;
  nf::CuckooFilterEnetstl filter(config);
  const u32 to_add = buckets * nf::kFilterSlotsPerBucket / 2;  // 50% load
  std::vector<ebpf::FiveTuple> added;
  for (u32 i = 0; i < to_add; ++i) {
    ebpf::FiveTuple t{};
    t.src_ip = 0x01000000u + i;
    t.dst_port = static_cast<ebpf::u16>(i);
    if (filter.Add(t)) {
      added.push_back(t);
    }
  }
  ASSERT_EQ(added.size(), to_add);
  for (const auto& t : added) {
    ASSERT_TRUE(filter.Contains(t));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FilterBuckets,
                         ::testing::Values(16u, 64u, 256u, 1024u, 8192u));

// --- Fused post-hash ops across row counts and mask widths --------------------

struct PostHashShape {
  u32 rows;
  u32 mask_bits;
};

class PostHashShapes
    : public ::testing::TestWithParam<std::tuple<u32, u32>> {};

TEST_P(PostHashShapes, FusedEqualsComposedAtEveryShape) {
  const u32 rows = std::get<0>(GetParam());
  const u32 mask = (1u << std::get<1>(GetParam())) - 1;
  std::vector<u32> fused((mask + 1) * rows, 0);
  std::vector<u32> composed((mask + 1) * rows, 0);
  pktgen::Rng rng(300 + rows * 31 + mask);
  for (int i = 0; i < 500; ++i) {
    u64 key[2] = {rng.NextU64(), rng.NextU64()};
    enetstl::HashCnt(fused.data(), rows, mask, key, sizeof(key), 5, 1);
    u32 h[8];
    enetstl::MultiHash8ToMem(key, sizeof(key), 5, h);
    for (u32 r = 0; r < rows; ++r) {
      ++composed[r * (mask + 1) + (h[r] & mask)];
    }
  }
  ASSERT_EQ(fused, composed);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PostHashShapes,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 8u),
                       ::testing::Values(4u, 8u, 12u)));

// --- BPF hash map across capacities -------------------------------------------

class HashMapCapacity : public ::testing::TestWithParam<u32> {};

TEST_P(HashMapCapacity, ChurnIsExactAtAnyCapacity) {
  const u32 capacity = GetParam();
  ebpf::HashMap<u64, u64> map(capacity);
  std::unordered_map<u64, u64> model;
  pktgen::Rng rng(400 + capacity);
  for (int step = 0; step < 4000; ++step) {
    const u64 key = rng.NextBounded(capacity * 2 + 1);
    switch (rng.NextBounded(3)) {
      case 0: {
        const u64 value = rng.NextU64();
        const int rc = map.UpdateElem(key, value);
        if (model.size() < capacity || model.count(key)) {
          ASSERT_EQ(rc, ebpf::kOk);
          model[key] = value;
        } else {
          ASSERT_EQ(rc, ebpf::kErrNoSpc);
        }
        break;
      }
      case 1: {
        u64* found = map.LookupElem(key);
        if (model.count(key)) {
          ASSERT_NE(found, nullptr);
          ASSERT_EQ(*found, model[key]);
        } else {
          ASSERT_EQ(found, nullptr);
        }
        break;
      }
      default:
        ASSERT_EQ(map.DeleteElem(key), model.erase(key) ? ebpf::kOk
                                                        : ebpf::kErrNoEnt);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, HashMapCapacity,
                         ::testing::Values(1u, 2u, 7u, 64u, 1000u));

// --- Bitmap across sizes crossing word boundaries -----------------------------

class BitmapSizes : public ::testing::TestWithParam<u32> {};

TEST_P(BitmapSizes, FirstSetMatchesNaiveAtAnySize) {
  const u32 bits = GetParam();
  enetstl::Bitmap bm(bits);
  pktgen::Rng rng(500 + bits);
  for (u32 i = 0; i < bits; ++i) {
    if (rng.NextBounded(5) == 0) {
      bm.Set(i);
    }
  }
  for (u32 from = 0; from <= bits; ++from) {
    u32 naive = bits;
    for (u32 i = from; i < bits; ++i) {
      if (bm.Test(i)) {
        naive = i;
        break;
      }
    }
    ASSERT_EQ(bm.FindFirstSetFrom(from), naive) << "bits=" << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapSizes,
                         ::testing::Values(1u, 63u, 64u, 65u, 127u, 128u,
                                           129u, 320u));

}  // namespace
