// Random-pool data structure (§4.3, "Data structures: random-pool").
//
// bpf_get_prandom_u32 on a per-packet basis costs a helper call each time
// (the paper measures a 46.6% average degradation). The random pool
// amortizes that: a batch of pseudo-random words is generated at once with a
// cheap xorshift128+ generator, consumed one by one, and automatically
// reinjected (refilled) when the pool runs dry — the enhancement over prior
// fixed-pool designs the paper describes.
//
// GeoRandomPool additionally stores samples of a geometric distribution,
// serving NitroSketch-style probabilistic updates: instead of flipping a
// biased coin per row, the NF asks "how many rows until the next update?"
// and skips ahead.
#ifndef ENETSTL_CORE_RANDOM_POOL_H_
#define ENETSTL_CORE_RANDOM_POOL_H_

#include <vector>

#include "ebpf/helper.h"
#include "ebpf/types.h"

namespace enetstl {

using ebpf::u32;
using ebpf::u64;

// Uniform pool of u32 values.
class RandomPool {
 public:
  // capacity: number of words buffered per refill (power of two recommended).
  RandomPool(u32 capacity, u64 seed);

  // kfunc: next pseudo-random u32. Refills the whole pool (amortized) when
  // empty — the automatic reinjection mechanism.
  ENETSTL_NOINLINE u32 Next();

  // Number of values left before the next refill (introspection/tests).
  u32 Remaining() const { return remaining_; }
  u64 refill_count() const { return refill_count_; }

 private:
  void Refill();

  std::vector<u32> pool_;
  u32 remaining_ = 0;
  u64 refill_count_ = 0;
  u64 state0_;
  u64 state1_;
};

// Pool of geometric-distribution samples: Next() returns the number of
// Bernoulli(p) trials up to and including the first success (values >= 1).
class GeoRandomPool {
 public:
  GeoRandomPool(u32 capacity, double p, u64 seed);

  // kfunc: next geometric sample.
  ENETSTL_NOINLINE u32 NextGeo();

  double p() const { return p_; }
  u32 Remaining() const { return remaining_; }
  u64 refill_count() const { return refill_count_; }

 private:
  void Refill();

  std::vector<u32> pool_;
  u32 remaining_ = 0;
  u64 refill_count_ = 0;
  double p_;
  double inv_log1m_p_;  // 1 / ln(1 - p), precomputed
  u64 state0_;
  u64 state1_;
};

}  // namespace enetstl

#endif  // ENETSTL_CORE_RANDOM_POOL_H_
