#include "nf/fused_chain.h"

#include <bit>
#include <utility>

#include "nf/chain.h"

namespace nf {

namespace {

// Slot index (0-based, ascending) of the idx-th set bit of `mask`. Runs only
// on the sampled-event path, where idx is rare and mask is one machine word.
inline u32 NthSetBit(u64 mask, u32 idx) {
  for (u32 k = 0; k < idx; ++k) {
    mask &= mask - 1;
  }
  return static_cast<u32>(std::countr_zero(mask));
}

}  // namespace

std::unique_ptr<FusedChain> FusedChain::Fuse(std::vector<FusedStage> stages,
                                             u32 generation) {
  if (!ebpf::FusionWithinTailCallBudget(static_cast<u32>(stages.size()))) {
    return nullptr;
  }
  for (const FusedStage& stage : stages) {
    if (stage.nf == nullptr || stage.stats == nullptr ||
        (stage.lowered && !stage.contains)) {
      return nullptr;
    }
  }
  return std::unique_ptr<FusedChain>(
      new FusedChain(std::move(stages), generation));
}

FusedChain::FusedChain(std::vector<FusedStage> stages, u32 generation)
    : stages_(std::move(stages)), generation_(generation) {
  for (const FusedStage& stage : stages_) {
    if (stage.lowered) {
      ++lowered_;
    }
  }
}

void FusedChain::ExecuteBurst(ebpf::XdpContext* ctxs, u32 count,
                              ebpf::XdpAction* verdicts) {
  ForEachNfChunk(count, [&](u32 start, u32 chunk) {
    BurstChunk(ctxs + start, chunk, verdicts + start);
  });
}

void FusedChain::BurstChunk(ebpf::XdpContext* ctxs, u32 count,
                            ebpf::XdpAction* verdicts) {
  // One fused burst stands in for a complete `depth`-program walk per
  // packet; charge the per-walk tail-call budget up front.
  const u32 depth = this->depth();
  ebpf::BeginFusedWalk(depth);

  // The live mask is the whole partition/regroup machinery of the generic
  // walk collapsed into one word: bit i set = original slot i is still on
  // the PASS path. Retiring a packet clears its bit and writes its final
  // verdict in place; survivors never move.
  u64 live = count == kMaxNfBurst ? ~0ull : ((1ull << count) - 1ull);
  u64 keyed = 0;     // lanes whose cached 5-tuple is current
  u64 parse_ok = 0;  // subset of keyed: the parse succeeded
  for (u32 i = 0; i < count; ++i) {
    work_[i] = ctxs[i];
  }

  for (u32 s = 0; s < depth && live != 0; ++s) {
    FusedStage& st = stages_[s];
    ChainStageStats& stats = *st.stats;
    const u64 entered = live;
    const u32 in_count = static_cast<u32>(std::popcount(entered));
    stats.in += in_count;
    const u64 t0 = detail::ChainNowNs();

    if (st.lowered) {
      // Refresh the key cache for live lanes that lack a current key; a
      // packet is parsed at most once between frame-mutating stages.
      u64 need = live & ~keyed;
      while (need != 0) {
        const u32 i = static_cast<u32>(std::countr_zero(need));
        const u64 bit = need & (~need + 1);
        need &= need - 1;
        if (ebpf::ParseFiveTuple(work_[i], &keys_[i])) {
          parse_ok |= bit;
        } else {
          parse_ok &= ~bit;
        }
        keyed |= bit;
      }
      // Unparseable packets exit with kAborted, exactly as the stage's own
      // packet path maps a failed parse.
      u64 aborts = live & ~parse_ok;
      live &= parse_ok;
      while (aborts != 0) {
        const u32 i = static_cast<u32>(std::countr_zero(aborts));
        aborts &= aborts - 1;
        verdicts[i] = ebpf::XdpAction::kAborted;
        ++stats.aborted;
      }

      const u32 nlive = static_cast<u32>(std::popcount(live));
      if (nlive != 0) {
        if (nlive * 4 >= count * 3) {
          // Dense burst: evaluate every lane [0, count) branchlessly. Dead
          // lanes are free to evaluate — the op is side-effect free and
          // keys_ always holds defined values — and skipping the gather
          // keeps the common nearly-all-PASS case a straight-line loop.
          st.contains(keys_, count, hits_);
          u64 m = live;
          while (m != 0) {
            const u32 i = static_cast<u32>(std::countr_zero(m));
            m &= m - 1;
            if (hits_[i]) {
              ++stats.pass;
            } else {
              verdicts[i] = ebpf::XdpAction::kDrop;
              ++stats.drop;
              live &= ~(1ull << i);
            }
          }
        } else {
          // Sparse burst: gather live keys (ascending slot order = arrival
          // order), one batched op, scatter the decisions back.
          u32 m = 0;
          u64 mm = live;
          while (mm != 0) {
            const u32 i = static_cast<u32>(std::countr_zero(mm));
            mm &= mm - 1;
            gather_slot_[m] = i;
            gather_keys_[m] = keys_[i];
            ++m;
          }
          st.contains(gather_keys_, m, hits_);
          for (u32 j = 0; j < m; ++j) {
            const u32 i = gather_slot_[j];
            if (hits_[j]) {
              ++stats.pass;
            } else {
              verdicts[i] = ebpf::XdpAction::kDrop;
              ++stats.drop;
              live &= ~(1ull << i);
            }
          }
        }
      }
    } else {
      // Non-lowered stage: gather the live contexts in arrival order and run
      // the stage's own burst path — by the batching invariant this is
      // exactly the compacted survivor burst the generic walk would feed it.
      u32 m = 0;
      u64 mm = live;
      while (mm != 0) {
        const u32 i = static_cast<u32>(std::countr_zero(mm));
        mm &= mm - 1;
        gather_slot_[m] = i;
        gather_ctxs_[m] = work_[i];
        ++m;
      }
      st.nf->ProcessBurst(gather_ctxs_, m, gather_verdicts_);
      for (u32 j = 0; j < m; ++j) {
        const u32 i = gather_slot_[j];
        // Propagate context-field mutations, as the generic walk's live[]
        // copies carry them stage to stage.
        work_[i] = gather_ctxs_[j];
        const ebpf::XdpAction action = gather_verdicts_[j];
        stats.Count(action);
        if (action != ebpf::XdpAction::kPass) {
          verdicts[i] = action;
          live &= ~(1ull << i);
        }
      }
      // The stage may have rewritten frame bytes; every cached key is
      // conservatively stale from here on.
      keyed = 0;
      parse_ok = 0;
    }

    const u64 stage_ns = detail::ChainNowNs() - t0;
    stats.ns += stage_ns;
    if constexpr (obs::kCompiledIn) {
      // Same scope, same entering count, and flow_of(idx) resolves the
      // idx-th entering packet in arrival order — so the sampler countdown
      // advances identically to the generic walk and sampled events carry
      // the same (scope, kind, flow) stream.
      obs::Telemetry::Global().RecordBurst(
          st.scope, stage_ns, in_count, [&](u32 idx) {
            return obs::FlowOf(work_[NthSetBit(entered, idx)]);
          });
    }
  }

  // Packets that passed every stage exit with the last stage's kPass.
  while (live != 0) {
    const u32 i = static_cast<u32>(std::countr_zero(live));
    live &= live - 1;
    verdicts[i] = ebpf::XdpAction::kPass;
  }
}

}  // namespace nf
