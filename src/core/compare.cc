#include "core/compare.h"

#include "core/compare_inl.h"

namespace enetstl {

ENETSTL_NOINLINE s32 FindU32(const u32* arr, u32 count, u32 key) {
  ebpf::CompilerBarrier();
  return internal::FindU32Impl(arr, count, key);
}

ENETSTL_NOINLINE s32 FindU16(const u16* arr, u32 count, u16 key) {
  ebpf::CompilerBarrier();
  return internal::FindU16Impl(arr, count, key);
}

ENETSTL_NOINLINE s32 FindKey16(const u8* keys, u32 count, const u8* key) {
  ebpf::CompilerBarrier();
  return internal::FindKey16Impl(keys, count, key);
}

ENETSTL_NOINLINE s32 CompareKey32(const u8* a, const u8* b) {
  ebpf::CompilerBarrier();
  return internal::CompareKey32Impl(a, b);
}

ENETSTL_NOINLINE s32 MinIndexU32(const u32* arr, u32 count, u32* min_val) {
  ebpf::CompilerBarrier();
  return internal::MinIndexU32Impl(arr, count, min_val);
}

ENETSTL_NOINLINE s32 MaxIndexU32(const u32* arr, u32 count, u32* max_val) {
  ebpf::CompilerBarrier();
  return internal::MaxIndexU32Impl(arr, count, max_val);
}

}  // namespace enetstl
