// Figure 3(a)/(b): skip-list key-value query in NFD-HCS.
//  (a) lookup throughput vs number of elements;
//  (b) update+delete (1:1 mix) throughput vs number of elements.
// Pure eBPF cannot implement this NF at all (problem P1), so the comparison
// is Kernel vs eNetSTL; the paper reports gaps of ~7.33% (lookup) and ~8.54%
// (update/delete).
#include <memory>

#include "bench/bench_util.h"
#include "nf/skiplist.h"

namespace {

using bench::u32;

void Preload(nf::SkipListBase& list, const std::vector<ebpf::FiveTuple>& flows) {
  for (const auto& flow : flows) {
    nf::SkipValue value{};
    list.Update(nf::SkipKey::FromTuple(flow), value);
  }
}

void RunSweep(bool update_delete) {
  bench::PrintSweepHeader("elements");
  double kernel_sum = 0, enetstl_sum = 0;
  int rows = 0;
  for (u32 load : {1024u, 4096u, 16384u, 65536u}) {
    const auto flows = pktgen::MakeFlowPopulation(load, 42);
    const auto trace =
        update_delete
            ? pktgen::MakeOpMixTrace(flows, 8192, 0.0, 0.5, 0.5, 43)
            : pktgen::MakeOpMixTrace(flows, 8192, 1.0, 0.0, 0.0, 43);

    nf::SkipListKernel kernel;
    Preload(kernel, flows);
    const double kernel_mpps = bench::MeasureMpps(kernel.Handler(), trace);

    nf::SkipListEnetstl enetstl;
    Preload(enetstl, flows);
    const double enetstl_mpps = bench::MeasureMpps(enetstl.Handler(), trace);

    std::printf("%-14u %12s %12.3f %12.3f %14s %+14.1f\n", load, "n/a (P1)",
                kernel_mpps, enetstl_mpps, "enabled",
                -bench::PercentGap(enetstl_mpps, kernel_mpps));
    kernel_sum += kernel_mpps;
    enetstl_sum += enetstl_mpps;
    ++rows;
  }
  std::printf("-- avg gap vs kernel: %.2f%% (paper: %s)\n",
              bench::PercentGap(enetstl_sum / rows, kernel_sum / rows),
              update_delete ? "8.54%" : "7.33%");
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figure 3(a): skip-list LOOKUP vs load (eBPF infeasible - P1)");
  RunSweep(/*update_delete=*/false);
  bench::PrintHeader("Figure 3(b): skip-list UPDATE+DELETE (1:1) vs load");
  RunSweep(/*update_delete=*/true);
  return 0;
}
