// bpf_spin_lock equivalent.
//
// eBPF couples every linked-list (and rbtree) mutation to a bpf_spin_lock
// held around the operation; the verifier rejects programs that touch a list
// without the owning lock. The simulated BpfList API takes a BpfSpinLock by
// reference on every mutation to model that mandatory coupling, and the lock
// is a real atomic spinlock so its cost shows up in measurements.
#ifndef ENETSTL_EBPF_SPINLOCK_H_
#define ENETSTL_EBPF_SPINLOCK_H_

#include <atomic>

#include "ebpf/helper.h"
#include "ebpf/types.h"

namespace ebpf {

class BpfSpinLock {
 public:
  BpfSpinLock() = default;
  BpfSpinLock(const BpfSpinLock&) = delete;
  BpfSpinLock& operator=(const BpfSpinLock&) = delete;

  // bpf_spin_lock / bpf_spin_unlock are helper calls (not inline atomics) in
  // real eBPF programs, so the boundary is out-of-line here as well.
  ENETSTL_NOINLINE void Lock() {
    while (flag_.exchange(1, std::memory_order_acquire) != 0) {
      while (flag_.load(std::memory_order_relaxed) != 0) {
      }
    }
  }

  ENETSTL_NOINLINE void Unlock() {
    flag_.store(0, std::memory_order_release);
  }

  bool IsLocked() const { return flag_.load(std::memory_order_relaxed) != 0; }

 private:
  std::atomic<u32> flag_{0};
};

// RAII guard for harness-side use; simulated eBPF programs call Lock/Unlock
// explicitly, as real BPF programs do.
class BpfSpinLockGuard {
 public:
  explicit BpfSpinLockGuard(BpfSpinLock& lock) : lock_(lock) { lock_.Lock(); }
  ~BpfSpinLockGuard() { lock_.Unlock(); }
  BpfSpinLockGuard(const BpfSpinLockGuard&) = delete;
  BpfSpinLockGuard& operator=(const BpfSpinLockGuard&) = delete;

 private:
  BpfSpinLock& lock_;
};

}  // namespace ebpf

#endif  // ENETSTL_EBPF_SPINLOCK_H_
