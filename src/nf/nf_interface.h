// Common interface every network-function variant implements, so tests,
// examples, and the measurement pipeline can drive eBPF / kernel / eNetSTL
// variants of one NF interchangeably.
#ifndef ENETSTL_NF_NF_INTERFACE_H_
#define ENETSTL_NF_NF_INTERFACE_H_

#include <memory>
#include <string>
#include <string_view>

#include "ebpf/program.h"
#include "pktgen/pipeline.h"

namespace nf {

using ebpf::s32;
using ebpf::u16;
using ebpf::u32;
using ebpf::u64;
using ebpf::u8;

// Which execution model an NF implementation targets.
enum class Variant {
  kEbpf,     // pure eBPF: scalar code, helper-call boundary, BPF maps/lists
  kKernel,   // native in-kernel baseline: no boundary, full instruction set
  kEnetstl,  // eBPF program using eNetSTL kfuncs for the hot operations
};

inline std::string_view VariantName(Variant v) {
  switch (v) {
    case Variant::kEbpf:
      return "eBPF";
    case Variant::kKernel:
      return "Kernel";
    case Variant::kEnetstl:
      return "eNetSTL";
  }
  return "?";
}

// Base class for packet-driven NFs.
class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  // Processes one packet (the XDP entry point of this NF).
  virtual ebpf::XdpAction Process(ebpf::XdpContext& ctx) = 0;

  virtual std::string_view name() const = 0;
  virtual Variant variant() const = 0;

  // Adapter for the measurement pipeline.
  pktgen::PacketHandler Handler() {
    return [this](ebpf::XdpContext& ctx) { return Process(ctx); };
  }
};

}  // namespace nf

#endif  // ENETSTL_NF_NF_INTERFACE_H_
