// Integration tests for the four real-world app pipelines (Figure 7): each
// must behave identically with the Origin (BPF-map) core and the eNetSTL
// core at the functional level — the swap is a performance change only.
#include <gtest/gtest.h>

#include <map>

#include "apps/ebpf_sketch.h"
#include "apps/katran_lb.h"
#include "apps/pcn_bridge.h"
#include "apps/rakelimit.h"
#include "pktgen/flowgen.h"
#include "pktgen/pipeline.h"

namespace apps {
namespace {

class AppsBothCores : public ::testing::TestWithParam<CoreKind> {
 protected:
  void SetUp() override { ebpf::SetCurrentCpu(0); }
};

TEST_P(AppsBothCores, KatranConnectionAffinity) {
  KatranConfig config;
  KatranLb lb(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(64, 5);
  // First packet of each flow picks a backend; all later packets of the
  // same flow must hit the connection table and get the same backend.
  std::map<ebpf::u32, ebpf::u32> first_choice;
  for (u32 i = 0; i < 64; ++i) {
    first_choice[i] = lb.PickBackend(flows[i]);
  }
  for (int round = 0; round < 10; ++round) {
    for (u32 i = 0; i < 64; ++i) {
      ASSERT_EQ(lb.PickBackend(flows[i]), first_choice[i])
          << "flow " << i << " round " << round;
    }
  }
  EXPECT_EQ(lb.misses(), 64u);
  EXPECT_EQ(lb.hits(), 640u);
}

TEST_P(AppsBothCores, KatranSpreadsAcrossBackends) {
  KatranConfig config;
  config.num_backends = 8;
  KatranLb lb(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(1000, 6);
  std::map<ebpf::u32, u32> spread;
  for (const auto& flow : flows) {
    ++spread[lb.PickBackend(flow)];
  }
  EXPECT_EQ(spread.size(), 8u);
  for (const auto& [backend, count] : spread) {
    EXPECT_GT(count, 50u) << "backend " << backend;  // expected 125
    EXPECT_LT(count, 300u) << "backend " << backend;
  }
}

TEST_P(AppsBothCores, KatranPacketPathForwards) {
  KatranConfig config;
  KatranLb lb(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(16, 7);
  const auto trace = pktgen::MakeUniformTrace(flows, 500, 8);
  u32 tx = 0;
  for (const auto& p : trace) {
    pktgen::Packet copy = p;
    ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
    if (lb.Process(ctx) == ebpf::XdpAction::kTx) {
      ++tx;
    }
  }
  EXPECT_EQ(tx, 500u);
  EXPECT_EQ(lb.hits() + lb.misses(), 500u);
  EXPECT_EQ(lb.misses(), 16u);  // one miss per flow
}

TEST_P(AppsBothCores, RakeLimitDropsHeavySource) {
  RakeLimitConfig config;
  config.level0_budget = 500;
  config.level1_budget = 400;
  config.level2_budget = 300;
  RakeLimit limiter(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(2, 9);
  // Flood flow 0; trickle flow 1.
  auto flood = pktgen::Packet::FromTuple(flows[0]);
  u32 flood_drops = 0;
  for (int i = 0; i < 2000; ++i) {
    pktgen::Packet copy = flood;
    ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
    if (limiter.Process(ctx) == ebpf::XdpAction::kDrop) {
      ++flood_drops;
    }
  }
  // After the budget is exhausted, everything drops: ~1700 of 2000.
  EXPECT_GT(flood_drops, 1500u);
  // The innocent flow still passes.
  auto innocent = pktgen::Packet::FromTuple(flows[1]);
  ebpf::XdpContext ctx{innocent.frame, innocent.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(limiter.Process(ctx), ebpf::XdpAction::kPass);
}

TEST_P(AppsBothCores, RakeLimitEpochResetsBudgets) {
  RakeLimitConfig config;
  config.epoch_packets = 1000;
  config.level0_budget = 100;
  config.level1_budget = 100;
  config.level2_budget = 100;
  RakeLimit limiter(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(1, 10);
  auto packet = pktgen::Packet::FromTuple(flows[0]);
  // Exhaust the budget.
  for (int i = 0; i < 500; ++i) {
    pktgen::Packet copy = packet;
    ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
    limiter.Process(ctx);
  }
  // Push past the epoch boundary; budget must be fresh right after.
  for (int i = 0; i < 500; ++i) {
    pktgen::Packet copy = packet;
    ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
    limiter.Process(ctx);
  }
  pktgen::Packet copy = packet;
  ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(limiter.Process(ctx), ebpf::XdpAction::kPass);
}

TEST_P(AppsBothCores, PcnBridgeBlocksAndRoutes) {
  PcnBridgeConfig config;
  PcnBridge bridge(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(6, 11);
  bridge.BlockFlow(flows[0]);
  ASSERT_TRUE(bridge.AddRoute(flows[1].dst_ip, 3));

  auto blocked = pktgen::Packet::FromTuple(flows[0]);
  ebpf::XdpContext ctx0{blocked.frame, blocked.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(bridge.Process(ctx0), ebpf::XdpAction::kDrop);

  auto routed = pktgen::Packet::FromTuple(flows[1]);
  ebpf::XdpContext ctx1{routed.frame, routed.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(bridge.Process(ctx1), ebpf::XdpAction::kTx);

  auto unknown = pktgen::Packet::FromTuple(flows[2]);
  ebpf::XdpContext ctx2{unknown.frame, unknown.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(bridge.Process(ctx2), ebpf::XdpAction::kPass);

  EXPECT_EQ(bridge.blocked(), 1u);
  EXPECT_EQ(bridge.routed(), 1u);
  EXPECT_EQ(bridge.unrouted(), 1u);
}

TEST_P(AppsBothCores, PcnBridgeRateLimitsFloodingSources) {
  PcnBridgeConfig config;
  config.rate_threshold = 100;
  PcnBridge bridge(GetParam(), config);
  const auto flows = pktgen::MakeFlowPopulation(2, 14);
  bridge.AddRoute(flows[0].dst_ip, 1);
  auto packet = pktgen::Packet::FromTuple(flows[0]);
  // First 100 packets route; the rest trip the per-source budget.
  for (int i = 0; i < 400; ++i) {
    pktgen::Packet copy = packet;
    ebpf::XdpContext ctx{copy.frame, copy.frame + ebpf::kFrameSize, 0};
    bridge.Process(ctx);
  }
  EXPECT_EQ(bridge.routed(), 100u);
  EXPECT_EQ(bridge.rate_limited(), 300u);
  // A different source (sharing nothing) is unaffected.
  auto other = pktgen::Packet::FromTuple(flows[1]);
  ebpf::XdpContext ctx{other.frame, other.frame + ebpf::kFrameSize, 0};
  EXPECT_NE(bridge.Process(ctx), ebpf::XdpAction::kDrop);
}

TEST_P(AppsBothCores, PcnBridgeScalesToManyRoutes) {
  PcnBridgeConfig config;
  PcnBridge bridge(GetParam(), config);
  for (u32 i = 0; i < 2000; ++i) {
    ASSERT_TRUE(bridge.AddRoute(0x0a000000u + i, i % 16)) << i;
  }
  const auto flows = pktgen::MakeFlowPopulation(1, 12);
  ebpf::FiveTuple probe = flows[0];
  probe.dst_ip = 0x0a000000u + 1234;
  auto packet = pktgen::Packet::FromTuple(probe);
  ebpf::XdpContext ctx{packet.frame, packet.frame + ebpf::kFrameSize, 0};
  EXPECT_EQ(bridge.Process(ctx), ebpf::XdpAction::kTx);
}

TEST_P(AppsBothCores, SketchServiceTracksElephants) {
  SketchServiceConfig config;
  config.nitro.update_prob = 0.5;
  config.heavykeeper.topk = 8;
  SketchService service(GetParam(), config);
  ebpf::helpers::SeedPrandom(0x777);
  const auto flows = pktgen::MakeFlowPopulation(200, 13);
  const auto trace = pktgen::MakeZipfTrace(flows, 30000, 1.3, 14);
  pktgen::ReplayOnce(service.Handler(), trace);
  // The Zipf head flow must be in the top-k with a meaningful estimate.
  const auto top = service.TopFlows();
  ASSERT_FALSE(top.empty());
  bool head_found = false;
  for (const auto& entry : top) {
    if (entry.flow == flows[0].src_ip) {
      head_found = true;
      EXPECT_GT(entry.est, 1000u);
    }
  }
  EXPECT_TRUE(head_found);
  // Its Nitro rate estimate is also substantial.
  EXPECT_GT(service.EstimateRate(flows[0]), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Cores, AppsBothCores,
                         ::testing::Values(CoreKind::kOrigin,
                                           CoreKind::kEnetstl),
                         [](const auto& info) {
                           return info.param == CoreKind::kOrigin
                                      ? "Origin"
                                      : "eNetSTL";
                         });

}  // namespace
}  // namespace apps
