// Miniature RakeLimit-style hierarchical fair rate limiter (Figure 7
// integration case; after Cloudflare's rakelimit).
//
// Packet rates are estimated at three aggregation levels — source host,
// (source host, destination port), and full 5-tuple — each with its own
// count-min sketch; a packet is dropped when any level's estimate exceeds
// that level's budget within the current epoch.
//
// Origin core: pure-eBPF count-min sketches (scalar hashing). eNetSTL core:
// fused-hash count-min sketches (CmsEnetstl) — the paper's component swap.
#ifndef ENETSTL_APPS_RAKELIMIT_H_
#define ENETSTL_APPS_RAKELIMIT_H_

#include <memory>

#include "apps/katran_lb.h"  // CoreKind
#include "nf/cms.h"
#include "nf/nf_interface.h"

namespace apps {

struct RakeLimitConfig {
  u32 rows = 4;
  u32 cols = 8192;
  u64 epoch_packets = 65536;  // counters reset every epoch
  u32 level0_budget = 4096;   // per-source budget per epoch
  u32 level1_budget = 2048;   // per (source, dst port)
  u32 level2_budget = 1024;   // per 5-tuple
  u32 seed = 0xcbf29ce4u;
};

class RakeLimit : public nf::NetworkFunction {
 public:
  RakeLimit(CoreKind core, const RakeLimitConfig& config);

  ebpf::XdpAction Process(ebpf::XdpContext& ctx) override;

  std::string_view name() const override { return "rakelimit"; }
  nf::Variant variant() const override {
    return core_ == CoreKind::kOrigin ? nf::Variant::kEbpf
                                      : nf::Variant::kEnetstl;
  }

  u64 dropped() const { return dropped_; }
  u64 passed() const { return passed_; }

 private:
  std::unique_ptr<nf::CmsBase> MakeSketch() const;

  CoreKind core_;
  RakeLimitConfig config_;
  std::unique_ptr<nf::CmsBase> level0_;  // keyed by src ip
  std::unique_ptr<nf::CmsBase> level1_;  // keyed by (src ip, dst port)
  std::unique_ptr<nf::CmsBase> level2_;  // keyed by 5-tuple
  u64 epoch_count_ = 0;
  u64 dropped_ = 0;
  u64 passed_ = 0;
};

}  // namespace apps

#endif  // ENETSTL_APPS_RAKELIMIT_H_
