// Unified post-hashing operations (§4.3, "Algorithms: unified post-hashing
// operations").
//
// NFs rarely need the raw values of d hash functions — they need the *effect*
// of those values: counters incremented (count-min), bits set/tested (bloom),
// or signatures compared (d-ary cuckoo). eNetSTL therefore fuses the
// multi-hash computation with the post-op inside one kfunc: the 8 lane hashes
// stay in a SIMD register, are spilled once to the local stack, and the
// post-op runs right there. The result returned to the caller is a scalar (or
// nothing), eliminating the SIMD-register -> eBPF-memory -> eBPF-register
// double copy that the split interface (MultiHash8ToMem + caller loop) pays.
//
// All operations use LaneSeed(base_seed, r) as the r-th hash function and
// support 1 <= rows <= 8. Column counts are powers of two (col_mask).
#ifndef ENETSTL_CORE_POST_HASH_H_
#define ENETSTL_CORE_POST_HASH_H_

#include <cstddef>

#include "core/hash.h"
#include "ebpf/helper.h"
#include "ebpf/types.h"

namespace enetstl {

using ebpf::s32;

// Count-min update: counters[r * (col_mask + 1) + (h_r & col_mask)] += inc
// for r in [0, rows). Saturating at u32 max.
ENETSTL_NOINLINE void HashCnt(u32* counters, u32 rows, u32 col_mask,
                              const void* key, std::size_t klen, u32 base_seed,
                              u32 inc);

// Count-min query: min over the rows of the addressed counters.
ENETSTL_NOINLINE u32 HashCntMin(const u32* counters, u32 rows, u32 col_mask,
                                const void* key, std::size_t klen,
                                u32 base_seed);

// Bloom-filter add: sets bit (h_r & bit_mask) in the bitmap for each row.
// bit_mask + 1 must be the bitmap size in bits (a multiple of 64).
ENETSTL_NOINLINE void HashSetBits(u64* bitmap, u32 rows, u32 bit_mask,
                                  const void* key, std::size_t klen,
                                  u32 base_seed);

// Bloom-filter query: true iff all addressed bits are set.
ENETSTL_NOINLINE bool HashTestBits(const u64* bitmap, u32 rows, u32 bit_mask,
                                   const void* key, std::size_t klen,
                                   u32 base_seed);

// d-ary cuckoo probe: position p_r = h_r & tbl_mask; returns the first row r
// with table[p_r] == sig (writing p_r to *pos_out), or -1 if no row matches.
// When no row matches and empty_out is non-null, *empty_out receives the
// position of the first row whose slot holds kEmptySig (or -1) — the
// insertion candidate — saving the caller a second multi-hash pass.
inline constexpr u32 kEmptySig = 0;
ENETSTL_NOINLINE s32 HashCmp(const u32* table, u32 tbl_mask, const void* key,
                             std::size_t klen, u32 base_seed, u32 rows, u32 sig,
                             u32* pos_out, s32* empty_out);

// Vector-of-bloom-filters (DPDK membership-library style) fused ops: the
// table holds one u32 set-mask per position. Update ORs `set_mask` into the
// addressed positions; query ANDs the addressed positions and returns the
// result — the set-membership vector — as a scalar in a register.
ENETSTL_NOINLINE void HashMaskOr(u32* table, u32 rows, u32 tbl_mask,
                                 const void* key, std::size_t klen,
                                 u32 base_seed, u32 set_mask);
ENETSTL_NOINLINE u32 HashMaskAnd(const u32* table, u32 rows, u32 tbl_mask,
                                 const void* key, std::size_t klen,
                                 u32 base_seed);

// Raw positions variant: writes the `rows` table positions (h_r & tbl_mask)
// to pos[]. Used where the post-op cannot be expressed by the fused forms;
// still one call for all rows.
ENETSTL_NOINLINE void HashPositions(u32* pos, u32 rows, u32 tbl_mask,
                                    const void* key, std::size_t klen,
                                    u32 base_seed);

}  // namespace enetstl

#endif  // ENETSTL_CORE_POST_HASH_H_
