// Packet scheduler: Carousel-style traffic shaping plus Eiffel-style strict
// priorities, the two queueing designs the paper builds on eNetSTL.
//
// Stage 1 — pacing: packets are assigned future transmit times and parked in
// a two-level time wheel (list-buckets data structure); advancing the clock
// releases the packets whose time has come.
// Stage 2 — priority: released packets enter a cFFS priority queue (hardware
// FFS kfunc) and drain strictly lowest-priority-value-first.
//
// Build & run:  ./build/examples/packet_scheduler
#include <cstdio>

#include "nf/eiffel.h"
#include "nf/nf_registry.h"
#include "nf/timewheel.h"
#include "pktgen/flowgen.h"

int main() {
  using ebpf::u32;
  using ebpf::u64;
  ebpf::SetCurrentCpu(0);

  // Both queueing structures come from the central registry (~1 us pacing
  // slots in the bench configuration); the downcasts expose their
  // enqueue/advance control planes.
  auto wheel_nf =
      nf::NfRegistry::Global().Create("timewheel", nf::Variant::kEnetstl);
  auto pq_nf =
      nf::NfRegistry::Global().Create("eiffel-cffs", nf::Variant::kEnetstl);
  auto& wheel = dynamic_cast<nf::TimeWheelEnetstl&>(*wheel_nf);
  auto& pq = dynamic_cast<nf::EiffelEnetstl&>(*pq_nf);

  // Shape 10k packets from 64 flows: each flow has a rate class that sets
  // both its pacing gap and its priority (lower = more urgent).
  const auto flows = pktgen::MakeFlowPopulation(64, 21);
  pktgen::Rng rng(22);
  u32 parked = 0;
  for (u32 i = 0; i < 10'000; ++i) {
    const u32 flow_idx = static_cast<u32>(rng.NextBounded(flows.size()));
    const u32 rate_class = flow_idx % 4;  // 0 = premium .. 3 = scavenger
    nf::TwElem elem;
    // Premium classes get tighter pacing (release sooner).
    elem.expires =
        wheel.clock_ns() + (1 + rng.NextBounded(64 << rate_class)) * 1024;
    elem.flow = flows[flow_idx].src_ip;
    if (wheel.Enqueue(elem)) {
      ++parked;
    }
  }
  std::printf("parked %u packets in the time wheel\n", parked);

  // Advance time; every released packet enters the priority queue with a
  // priority derived from its flow's rate class.
  u32 released = 0;
  nf::TwElem out[128];
  for (u32 slot = 0; slot < nf::kTvrSize * 16 && released < parked; ++slot) {
    const u32 n = wheel.AdvanceOneSlot(out, 128);
    for (u32 i = 0; i < n; ++i) {
      const u32 rate_class = (out[i].flow ^ (out[i].flow >> 8)) % 4;
      nf::EiffelItem item;
      item.priority = rate_class * 1000 + (out[i].flow & 0xff);
      item.flow = out[i].flow;
      pq.Enqueue(item);
      ++released;
    }
  }
  std::printf("released %u packets through pacing\n", released);

  // Drain the priority queue: order must be non-decreasing in priority.
  u32 drained = 0;
  u32 last_priority = 0;
  bool ordered = true;
  u32 class_counts[4] = {0, 0, 0, 0};
  nf::EiffelItem item;
  while (pq.DequeueMin(&item)) {
    if (item.priority < last_priority && drained > 0) {
      ordered = false;
    }
    last_priority = item.priority;
    ++class_counts[item.priority / 1000];
    ++drained;
  }
  std::printf("drained %u packets, strict priority order: %s\n", drained,
              ordered ? "yes" : "VIOLATED");
  for (u32 c = 0; c < 4; ++c) {
    std::printf("  class %u: %u packets\n", c, class_counts[c]);
  }
  return ordered && drained == released ? 0 : 1;
}
